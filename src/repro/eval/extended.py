"""Extended-workloads comparison: the off-paper kernels, paper style.

The paper's evaluation stops at the eight Table 2 benchmarks; this driver
runs the same speedup comparison over every *off-paper* workload registered
with :mod:`repro.workloads.registry` (BFS, SpMV, union-find out of the box —
plus anything a user registers).  Each kernel is simulated under the four
prefetching schemes a new workload gets for free — no prefetching, the
stride prefetcher, the GHB prefetcher, and the programmable prefetcher
running the workload's manual PPU kernels — through one deduplicated batch
engine plan, and the table reports the speedups plus the engine's dedup and
cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.comparison import ComparisonResult, comparison_plan
from ..sim.engine import EngineStats, SimEngine, SimRequest
from ..sim.modes import PrefetchMode
from ..sim.results import geometric_mean
from ..workloads import registry

#: The schemes every registry workload supports without compiler support:
#: no-prefetching baseline, the two hardware baselines, and the programmable
#: prefetcher running the workload's manual PPU kernels.
EXTENDED_MODES = [
    PrefetchMode.NONE,
    PrefetchMode.STRIDE,
    PrefetchMode.GHB_REGULAR,
    PrefetchMode.MANUAL,
]


@dataclass
class ExtendedData:
    """Speedups of the extended workloads plus the engine run statistics.

    Attributes:
        speedups: ``{workload: {mode value: speedup-over-baseline}}``; the
            baseline (``none``) column is always 1.0, missing modes are
            ``None``.
        compiled_speedups: ``{workload: speedup}`` for the manual mode run
            with compiler-derived kernels (``kernel_source="compiled"``);
            only workloads whose spec declares ``derives_manual`` appear.
            Kept separate from ``speedups`` because the mode value is still
            ``manual`` — only the kernel provenance differs.
        comparison: The underlying per-mode results.
        engine_stats: Statistics of the batch-engine run that produced the
            results (submitted / deduplicated / cache hits / simulated).
    """

    speedups: dict[str, dict[str, Optional[float]]] = field(default_factory=dict)
    compiled_speedups: dict[str, Optional[float]] = field(default_factory=dict)
    comparison: Optional[ComparisonResult] = None
    engine_stats: Optional[EngineStats] = None

    def geomean(self, mode: PrefetchMode) -> float:
        return geometric_mean(
            [
                row[mode.value]
                for row in self.speedups.values()
                if row.get(mode.value) is not None
            ]
        )

    def compiled_geomean(self) -> float:
        return geometric_mean(
            [value for value in self.compiled_speedups.values() if value is not None]
        )


def run_extended(
    *,
    workloads: Optional[Iterable[str]] = None,
    modes: Optional[Iterable[PrefetchMode]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    engine: Optional[SimEngine] = None,
) -> ExtendedData:
    """Compare every off-paper workload under the extended mode set.

    Args:
        workloads: Workload names; defaults to
            :func:`repro.workloads.registry.extended_names`.
        modes: Prefetch modes to compare; defaults to :data:`EXTENDED_MODES`.
        config: System configuration (default ``SystemConfig.scaled()``).
        scale: Workload scale name.
        seed: Workload data-generation seed.
        engine: A shared :class:`SimEngine` for dedup/parallelism/caching
            across drivers; a serial engine is created when omitted.

    Returns:
        An :class:`ExtendedData` with one speedup row per workload and the
        batch-engine statistics of the run.
    """

    names = list(workloads) if workloads is not None else registry.extended_names()
    mode_list = list(modes) if modes is not None else list(EXTENDED_MODES)
    system_config = config if config is not None else SystemConfig.scaled()
    if engine is None:
        engine = SimEngine()

    plan = comparison_plan(names, mode_list, config=system_config, scale=scale, seed=seed)
    base_requests = list(plan)

    # One extra manual-mode point per derivable workload, pinned to the
    # compiler-derived kernels.  Same plan, same engine run: kernel
    # provenance is part of the request digest, so these never alias the
    # hand-written manual points, and the dedup/cache statistics cover the
    # whole batch.
    compiled_requests: dict[str, SimRequest] = {}
    if PrefetchMode.MANUAL in mode_list:
        for name in names:
            if not registry.get(name).derives_manual:
                continue
            request = SimRequest(
                workload=name,
                mode=PrefetchMode.MANUAL.value,
                scale=scale,
                seed=seed,
                config=system_config,
                kernel_source="compiled",
            )
            compiled_requests[name] = request
            plan.add(request)

    batch = engine.run(plan)

    comparison = ComparisonResult(engine_stats=batch.stats)
    for request in base_requests:
        result = batch.get(request)
        if result is not None:
            comparison.add(result)

    data = ExtendedData(comparison=comparison, engine_stats=batch.stats)
    for name in names:
        row: dict[str, Optional[float]] = {}
        for mode in mode_list:
            row[mode.value] = comparison.speedup(name, mode) if mode != PrefetchMode.NONE else (
                1.0 if comparison.result(name, PrefetchMode.NONE) is not None else None
            )
        data.speedups[name] = row
    for name, request in compiled_requests.items():
        result = batch.get(request)
        baseline = comparison.result(name, PrefetchMode.NONE)
        data.compiled_speedups[name] = (
            result.speedup_over(baseline) if result is not None and baseline is not None else None
        )
    return data


def format_extended(data: ExtendedData, *, modes: Optional[Iterable[PrefetchMode]] = None) -> str:
    """Render the extended comparison as a paper-style speedup table."""

    mode_list = list(modes) if modes is not None else list(EXTENDED_MODES)
    mode_values = [mode.value for mode in mode_list]
    columns = list(mode_values)
    show_compiled = bool(data.compiled_speedups)
    if show_compiled:
        # The compiler-derived manual kernels, next to the hand-written ones.
        columns.append("manual(comp)")
    header = f"{'workload':<12}" + "".join(f"{column:>14}" for column in columns)
    lines = [
        "Extended workloads: speedup over no prefetching",
        header,
        "-" * len(header),
    ]
    for name, row in data.speedups.items():
        cells = []
        for value in mode_values:
            speedup = row.get(value)
            cells.append(f"{speedup:>14.2f}" if speedup is not None else f"{'--':>14}")
        if show_compiled:
            speedup = data.compiled_speedups.get(name)
            cells.append(f"{speedup:>14.2f}" if speedup is not None else f"{'--':>14}")
        lines.append(f"{name:<12}" + "".join(cells))
    lines.append("-" * len(header))
    geomeans = []
    for mode in mode_list:
        value = data.geomean(mode)
        geomeans.append(f"{value:>14.2f}" if value else f"{'--':>14}")
    if show_compiled:
        value = data.compiled_geomean()
        geomeans.append(f"{value:>14.2f}" if value else f"{'--':>14}")
    lines.append(f"{'geomean':<12}" + "".join(geomeans))
    if data.engine_stats is not None:
        lines.append("")
        lines.append(f"Batch engine: {data.engine_stats.summary()}")
    return "\n".join(lines)
