"""Experiment harness: regenerate every table and figure of the evaluation.

Each module reproduces one artefact of Section 7:

* :mod:`~repro.eval.figure7`  — speedups of every prefetching scheme.
* :mod:`~repro.eval.figure8`  — L1 prefetch utilisation and read hit rates.
* :mod:`~repro.eval.figure9`  — PPU clock-speed and PPU-count sweeps.
* :mod:`~repro.eval.figure10` — per-PPU activity factors.
* :mod:`~repro.eval.figure11` — event triggering vs blocking on loads.
* :mod:`~repro.eval.memtraffic` — extra memory accesses (Section 7.2 text).
* :mod:`~repro.eval.table1`   — the simulated system configuration.
* :mod:`~repro.eval.table2`   — the benchmark summary.
* :mod:`~repro.eval.extended` — the off-paper workloads (registry extras).
* :mod:`~repro.eval.report`   — runs everything and renders EXPERIMENTS.md.

Every experiment function returns a plain data structure (suitable for tests
and further analysis) and has a ``format_*`` companion that renders the
ASCII table printed by the examples and benchmarks.
"""

from .extended import EXTENDED_MODES, ExtendedData, format_extended, run_extended
from .figure7 import Figure7Data, format_figure7, run_figure7
from .figure8 import Figure8Data, format_figure8, run_figure8
from .figure9 import Figure9Data, format_figure9, run_figure9
from .figure10 import Figure10Data, format_figure10, run_figure10
from .figure11 import Figure11Data, format_figure11, run_figure11
from .memtraffic import MemTrafficData, format_memtraffic, run_memtraffic
from .table1 import format_table1, run_table1
from .table2 import format_table2, run_table2

__all__ = [
    "run_figure7",
    "format_figure7",
    "Figure7Data",
    "run_figure8",
    "format_figure8",
    "Figure8Data",
    "run_figure9",
    "format_figure9",
    "Figure9Data",
    "run_figure10",
    "format_figure10",
    "Figure10Data",
    "run_figure11",
    "format_figure11",
    "Figure11Data",
    "run_memtraffic",
    "format_memtraffic",
    "MemTrafficData",
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_extended",
    "format_extended",
    "ExtendedData",
    "EXTENDED_MODES",
]
