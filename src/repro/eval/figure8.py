"""Figure 8: L1 prefetch utilisation and read hit rates."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.comparison import ComparisonResult, run_comparison
from ..sim.engine import SimEngine
from ..sim.modes import PrefetchMode
from ..workloads import registry


@dataclass
class Figure8Data:
    """Per-benchmark prefetch utilisation and hit rates."""

    #: Figure 8(a): fraction of prefetches used before eviction from the L1.
    utilisation: dict[str, float] = field(default_factory=dict)
    #: Figure 8(b): L1 read hit rate without and with the programmable prefetcher.
    hit_rates: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: The G500-List side note: L2 hit rates without/with prefetching.
    l2_hit_rates: dict[str, tuple[float, float]] = field(default_factory=dict)


def run_figure8(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    comparison: Optional[ComparisonResult] = None,
    engine: Optional[SimEngine] = None,
) -> Figure8Data:
    names = list(workloads) if workloads is not None else registry.paper_names()
    if comparison is None:
        comparison = run_comparison(
            names, [PrefetchMode.MANUAL], config=config, scale=scale, seed=seed,
            engine=engine,
        )

    data = Figure8Data()
    for name in names:
        baseline = comparison.result(name, PrefetchMode.NONE)
        manual = comparison.result(name, PrefetchMode.MANUAL)
        if baseline is None or manual is None:
            continue
        data.utilisation[name] = manual.l1_prefetch_utilisation
        data.hit_rates[name] = (baseline.l1_read_hit_rate, manual.l1_read_hit_rate)
        data.l2_hit_rates[name] = (baseline.l2_read_hit_rate, manual.l2_read_hit_rate)
    return data


def format_figure8(data: Figure8Data) -> str:
    lines = [
        "Figure 8(a): proportion of prefetches used before eviction from the L1",
        f"{'benchmark':<12}{'utilisation':>14}",
        "-" * 26,
    ]
    for name, value in data.utilisation.items():
        lines.append(f"{name:<12}{value:>14.2f}")

    lines += [
        "",
        "Figure 8(b): L1 read hit rate (and L2, for the G500-List discussion)",
        f"{'benchmark':<12}{'L1 no-PF':>10}{'L1 prog-PF':>12}{'L2 no-PF':>10}{'L2 prog-PF':>12}",
        "-" * 58,
    ]
    for name, (before, after) in data.hit_rates.items():
        l2_before, l2_after = data.l2_hit_rates.get(name, (0.0, 0.0))
        lines.append(
            f"{name:<12}{before:>10.2f}{after:>12.2f}{l2_before:>10.2f}{l2_after:>12.2f}"
        )
    return "\n".join(lines)
