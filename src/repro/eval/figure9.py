"""Figure 9: PPU clock-frequency and PPU-count scaling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.results import geometric_mean
from ..sim.sweeps import (
    FIGURE9A_FREQUENCIES,
    FIGURE9B_COUNTS,
    FIGURE9B_FREQUENCIES,
    ppu_count_frequency_sweep,
    ppu_frequency_sweep,
)
from ..workloads import WORKLOAD_ORDER, build_workload
from ..workloads.base import Workload


@dataclass
class Figure9Data:
    """Clock-speed sweep per benchmark (9a) and count×clock sweep for G500-CSR (9b)."""

    frequency_sweeps: dict[str, dict[float, float]] = field(default_factory=dict)
    count_sweep: dict[tuple[int, float], float] = field(default_factory=dict)
    count_sweep_workload: str = "g500-csr"

    def geomean_at(self, frequency: float) -> float:
        values = [
            sweep[frequency]
            for sweep in self.frequency_sweeps.values()
            if frequency in sweep
        ]
        return geometric_mean(values)


def run_figure9(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    frequencies: Optional[Iterable[float]] = None,
    counts: Optional[Iterable[int]] = None,
    count_sweep_workload: str = "g500-csr",
    prebuilt: Optional[dict[str, Workload]] = None,
) -> Figure9Data:
    names = list(workloads) if workloads is not None else list(WORKLOAD_ORDER)
    frequency_list = list(frequencies) if frequencies is not None else list(FIGURE9A_FREQUENCIES)
    count_list = list(counts) if counts is not None else list(FIGURE9B_COUNTS)

    data = Figure9Data(count_sweep_workload=count_sweep_workload)
    built: dict[str, Workload] = dict(prebuilt or {})

    for name in names:
        workload = built.get(name) or build_workload(name, scale=scale, seed=seed)
        built[name] = workload
        data.frequency_sweeps[name] = ppu_frequency_sweep(
            workload, frequencies=frequency_list, config=config
        )

    sweep_workload = built.get(count_sweep_workload) or build_workload(
        count_sweep_workload, scale=scale, seed=seed
    )
    data.count_sweep = ppu_count_frequency_sweep(
        sweep_workload,
        counts=count_list,
        frequencies=frequency_list
        if frequencies is not None
        else list(FIGURE9B_FREQUENCIES),
        config=config,
    )
    return data


def format_figure9(data: Figure9Data) -> str:
    frequencies = sorted({f for sweep in data.frequency_sweeps.values() for f in sweep})
    header = f"{'benchmark':<12}" + "".join(f"{f:>9.3g}GHz" for f in frequencies)
    lines = ["Figure 9(a): speedup vs PPU clock speed (12 PPUs)", header, "-" * len(header)]
    for name, sweep in data.frequency_sweeps.items():
        cells = "".join(
            f"{sweep[f]:>12.2f}" if f in sweep else f"{'--':>12}" for f in frequencies
        )
        lines.append(f"{name:<12}{cells}")
    lines.append("-" * len(header))
    lines.append(
        f"{'geomean':<12}"
        + "".join(f"{data.geomean_at(f):>12.2f}" for f in frequencies)
    )

    if data.count_sweep:
        counts = sorted({count for count, _ in data.count_sweep})
        sweep_frequencies = sorted({f for _, f in data.count_sweep})
        lines += [
            "",
            f"Figure 9(b): PPU count x clock on {data.count_sweep_workload}",
            f"{'PPUs':<6}" + "".join(f"{f:>9.3g}GHz" for f in sweep_frequencies),
        ]
        for count in counts:
            cells = "".join(
                f"{data.count_sweep.get((count, f), float('nan')):>12.2f}"
                for f in sweep_frequencies
            )
            lines.append(f"{count:<6}{cells}")
    return "\n".join(lines)
