"""Figure 9: PPU clock-frequency and PPU-count scaling.

The whole figure — per-benchmark frequency sweeps, the count × clock sweep,
and the shared no-prefetch references — is declared as one
:class:`~repro.sim.engine.SimPlan` and executed in a single engine run, so
the count-sweep workload's baseline is simulated once (not once per sweep)
and a parallel runner can spread every swept point across cores.
:func:`figure9_plan` exposes the plan so the full-report driver can merge it
with the Figure 7 comparison plan and execute everything together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.engine import SimEngine, SimPlan, SimRequest, SerialRunner
from ..sim.results import geometric_mean
from ..sim.sweeps import (
    FIGURE9A_FREQUENCIES,
    FIGURE9B_COUNTS,
    FIGURE9B_FREQUENCIES,
    baseline_request,
    count_frequency_sweep_requests,
    frequency_sweep_requests,
)
from ..workloads import registry
from ..workloads.base import Workload


@dataclass
class Figure9Data:
    """Clock-speed sweep per benchmark (9a) and count×clock sweep for G500-CSR (9b)."""

    frequency_sweeps: dict[str, dict[float, float]] = field(default_factory=dict)
    count_sweep: dict[tuple[int, float], float] = field(default_factory=dict)
    count_sweep_workload: str = "g500-csr"

    def geomean_at(self, frequency: float) -> float:
        values = [
            sweep[frequency]
            for sweep in self.frequency_sweeps.values()
            if frequency in sweep
        ]
        return geometric_mean(values)


@dataclass
class _Figure9Requests:
    """The declared requests, kept so results can be read back off a batch."""

    plan: SimPlan
    baselines: dict[str, SimRequest]
    frequency_points: dict[str, dict[float, SimRequest]]
    count_points: dict[tuple[int, float], SimRequest]


def figure9_plan(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    frequencies: Optional[Iterable[float]] = None,
    counts: Optional[Iterable[int]] = None,
    count_sweep_frequencies: Optional[Iterable[float]] = None,
    count_sweep_workload: str = "g500-csr",
) -> _Figure9Requests:
    """Declare every Figure 9 simulation point as one deduplicated plan."""

    names = list(workloads) if workloads is not None else registry.paper_names()
    system_config = config if config is not None else SystemConfig.scaled()
    frequency_list = list(frequencies) if frequencies is not None else list(FIGURE9A_FREQUENCIES)
    count_list = list(counts) if counts is not None else list(FIGURE9B_COUNTS)
    count_frequency_list = (
        list(count_sweep_frequencies)
        if count_sweep_frequencies is not None
        else list(FIGURE9B_FREQUENCIES)
    )

    plan = SimPlan()
    baselines: dict[str, SimRequest] = {}
    frequency_points: dict[str, dict[float, SimRequest]] = {}
    for name in names:
        baselines[name] = plan.add(
            baseline_request(name, system_config, scale=scale, seed=seed)
        )
        points = frequency_sweep_requests(
            name, frequency_list, system_config, scale=scale, seed=seed
        )
        frequency_points[name] = {f: plan.add(req) for f, req in points.items()}

    baselines[count_sweep_workload] = plan.add(
        baseline_request(count_sweep_workload, system_config, scale=scale, seed=seed)
    )
    count_points = {
        key: plan.add(req)
        for key, req in count_frequency_sweep_requests(
            count_sweep_workload,
            count_list,
            count_frequency_list,
            system_config,
            scale=scale,
            seed=seed,
        ).items()
    }
    return _Figure9Requests(plan, baselines, frequency_points, count_points)


def run_figure9(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    frequencies: Optional[Iterable[float]] = None,
    counts: Optional[Iterable[int]] = None,
    count_sweep_workload: str = "g500-csr",
    prebuilt: Optional[dict[str, Workload]] = None,
    engine: Optional[SimEngine] = None,
) -> Figure9Data:
    declared = figure9_plan(
        workloads=workloads,
        config=config,
        scale=scale,
        seed=seed,
        frequencies=frequencies,
        counts=counts,
        count_sweep_frequencies=frequencies,
        count_sweep_workload=count_sweep_workload,
    )
    if engine is None:
        engine = SimEngine(runner=SerialRunner(workloads=prebuilt))
    batch = engine.run(declared.plan)

    data = Figure9Data(count_sweep_workload=count_sweep_workload)
    for name, points in declared.frequency_points.items():
        reference = batch[declared.baselines[name]]
        data.frequency_sweeps[name] = {
            frequency: batch[request].speedup_over(reference)
            for frequency, request in points.items()
            if batch.get(request) is not None
        }
    count_reference = batch[declared.baselines[count_sweep_workload]]
    data.count_sweep = {
        key: batch[request].speedup_over(count_reference)
        for key, request in declared.count_points.items()
        if batch.get(request) is not None
    }
    return data


def format_figure9(data: Figure9Data) -> str:
    frequencies = sorted({f for sweep in data.frequency_sweeps.values() for f in sweep})
    header = f"{'benchmark':<12}" + "".join(f"{f:>9.3g}GHz" for f in frequencies)
    lines = ["Figure 9(a): speedup vs PPU clock speed (12 PPUs)", header, "-" * len(header)]
    for name, sweep in data.frequency_sweeps.items():
        cells = "".join(
            f"{sweep[f]:>12.2f}" if f in sweep else f"{'--':>12}" for f in frequencies
        )
        lines.append(f"{name:<12}{cells}")
    lines.append("-" * len(header))
    lines.append(
        f"{'geomean':<12}"
        + "".join(f"{data.geomean_at(f):>12.2f}" for f in frequencies)
    )

    if data.count_sweep:
        counts = sorted({count for count, _ in data.count_sweep})
        sweep_frequencies = sorted({f for _, f in data.count_sweep})
        lines += [
            "",
            f"Figure 9(b): PPU count x clock on {data.count_sweep_workload}",
            f"{'PPUs':<6}" + "".join(f"{f:>9.3g}GHz" for f in sweep_frequencies),
        ]
        for count in counts:
            cells = "".join(
                f"{data.count_sweep.get((count, f), float('nan')):>12.2f}"
                for f in sweep_frequencies
            )
            lines.append(f"{count:<6}{cells}")
    return "\n".join(lines)
