"""Run every experiment and render the EXPERIMENTS.md report.

This is the top of the reproduction pipeline: it declares every simulation
the evaluation needs — the Figure 7 comparison (shared by Figures 8, 10, 11
and the traffic analysis) plus the Figure 9 sweeps — as **one** deduplicated
:class:`~repro.sim.engine.SimPlan`, executes it in a single engine run
(serial or parallel, optionally against a persistent result cache), and
renders everything both as console tables and as a Markdown report recording
paper-vs-measured values.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.comparison import comparison_plan, run_comparison
from ..sim.engine import (
    EngineStats,
    MultiprocessRunner,
    ResultCache,
    SerialRunner,
    SimEngine,
)
from ..trace_store import trace_store_from_spec
from ..sim.modes import FIGURE7_MODES, PrefetchMode
from ..workloads import registry
from . import paper_values
from .figure7 import Figure7Data, format_figure7, run_figure7
from .figure8 import Figure8Data, format_figure8, run_figure8
from .figure9 import Figure9Data, figure9_plan, format_figure9, run_figure9
from .figure10 import Figure10Data, format_figure10, run_figure10
from .figure11 import Figure11Data, format_figure11, run_figure11
from .memtraffic import MemTrafficData, format_memtraffic, run_memtraffic
from .table1 import format_table1, run_table1
from .table2 import format_table2, run_table2


@dataclass
class ReproductionReport:
    """Everything measured by one full reproduction run."""

    figure7: Figure7Data
    figure8: Figure8Data
    figure9: Optional[Figure9Data]
    figure10: Figure10Data
    figure11: Figure11Data
    memtraffic: MemTrafficData
    table1: dict[str, dict[str, object]]
    table2: list[dict[str, str]]
    scale: str
    #: Plan/execution statistics of the shared engine run (dedup, cache hits,
    #: simulations executed, runner kind).
    engine_stats: Optional[EngineStats] = None

    def format_console(self) -> str:
        sections = [
            format_table1(self.table1),
            "",
            format_table2(self.table2),
            "",
            format_figure7(self.figure7),
            "",
            format_figure8(self.figure8),
            "",
            format_figure10(self.figure10),
            "",
            format_figure11(self.figure11),
            "",
            format_memtraffic(self.memtraffic),
        ]
        if self.figure9 is not None:
            sections += ["", format_figure9(self.figure9)]
        if self.engine_stats is not None:
            sections += ["", f"Batch engine: {self.engine_stats.summary()}"]
        return "\n".join(sections)


def build_engine(
    *,
    parallel: bool = False,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    trace_store_dir: Optional[str] = None,
    service: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    deadline: Optional[float] = None,
    max_attempts: Optional[int] = None,
) -> SimEngine:
    """Assemble an engine from the common driver knobs.

    ``trace_store_dir`` mirrors the result cache's knob for the trace
    artifact tier: ``None`` uses the environment default
    (``REPRO_TRACE_STORE``, falling back to the per-user cache directory),
    ``"off"`` disables the tier, and any other value names the directory.

    The resilience knobs (see ``docs/resilience.md``): ``checkpoint_dir``
    writes a durable run manifest as each request completes; ``resume``
    replays the previous manifest against the cache and executes only the
    missing requests; ``deadline`` bounds each run in seconds; and
    ``max_attempts`` bounds how often the parallel runner requeues a chunk
    whose worker hung or crashed.

    ``service`` routes execution to the service fabric: a
    :class:`~repro.service.ServiceEngine` submitting plans to ``repro
    serve`` daemons at an ordered endpoint list (``ADDR[,ADDR...]``, each
    ``host:port`` or ``unix:/path``), failing over between them.  The
    daemons own their own caches, trace stores and workers — but the local
    knobs are *not* dead weight: ``deadline`` is forwarded as the
    per-submission deadline, and all of them configure the local fallback
    engine the service engine degrades to when every endpoint is
    unreachable (so a degraded run still honors ``--cache``,
    ``--checkpoint`` and ``--resume``).
    """

    if service is not None:
        from ..service import ServiceEngine

        def local_engine_factory() -> SimEngine:
            return build_engine(
                parallel=parallel,
                workers=workers,
                cache_dir=cache_dir,
                trace_store_dir=trace_store_dir,
                checkpoint_dir=checkpoint_dir,
                resume=resume,
                deadline=deadline,
                max_attempts=max_attempts,
            )

        return ServiceEngine(
            service, deadline=deadline, local_engine_factory=local_engine_factory
        )
    store = trace_store_from_spec(trace_store_dir)
    if parallel:
        runner_kwargs = {} if max_attempts is None else {"max_attempts": max_attempts}
        runner = MultiprocessRunner(workers, trace_store=store, **runner_kwargs)
    else:
        runner = SerialRunner(trace_store=store)
    cache = ResultCache(cache_dir) if cache_dir else None
    if resume and cache is None:
        # Resume replays the manifest *against the cache*; without one only
        # unavailable markers could be reused.  Nudge rather than fail —
        # the run is still correct, just slower.
        print(
            "note: --resume without a result cache re-executes completed "
            "requests; pass --cache DIR to make resume effective",
            file=sys.stderr,
        )
    return SimEngine(
        runner=runner,
        cache=cache,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        deadline=deadline,
    )


def failure_exit_code(stats: Optional[EngineStats]) -> int:
    """Driver exit code for a finished run: nonzero when requests failed.

    Failed requests are delivered as labelled skips, so a report still
    renders — but a CI job or script must not read partial results as
    success.  Prints the failure labels to stderr as the explanation.
    """

    if stats is None or not stats.failed:
        return 0
    print(
        f"error: {stats.failed} simulation request(s) failed:", file=sys.stderr
    )
    for label, count in sorted(stats.failures.items()):
        suffix = f" (×{count})" if count > 1 else ""
        print(f"  - {label}{suffix}", file=sys.stderr)
    return 1


def run_report(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    include_figure9: bool = True,
    engine: Optional[SimEngine] = None,
    parallel: bool = False,
    workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    trace_store_dir: Optional[str] = None,
    service: Optional[str] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    deadline: Optional[float] = None,
    max_attempts: Optional[int] = None,
) -> ReproductionReport:
    """Run the full experiment suite and return the collected report.

    Every simulation point of every figure is declared up front in one
    deduplicated plan and executed in a single engine run; the per-figure
    code then reads results back out of the engine's memo without simulating
    anything further.
    """

    names = list(workloads) if workloads is not None else registry.paper_names()
    system_config = config if config is not None else SystemConfig.scaled()
    if engine is None:
        engine = build_engine(
            parallel=parallel, workers=workers, cache_dir=cache_dir,
            trace_store_dir=trace_store_dir, service=service,
            checkpoint_dir=checkpoint_dir, resume=resume,
            deadline=deadline, max_attempts=max_attempts,
        )

    # One plan drives everything: the Figure 7 comparison modes (shared by
    # Figures 8, 10, 11 and the traffic analysis) plus the Figure 9 sweeps.
    modes = list(FIGURE7_MODES) + [PrefetchMode.MANUAL_BLOCKED]
    plan = comparison_plan(names, modes, config=system_config, scale=scale, seed=seed)
    if include_figure9:
        plan.merge(
            figure9_plan(
                workloads=names, config=system_config, scale=scale, seed=seed
            ).plan
        )
    batch = engine.run(plan)

    comparison = run_comparison(
        names, modes, config=system_config, scale=scale, seed=seed, engine=engine
    )
    figure7 = run_figure7(workloads=names, comparison=comparison)
    figure8 = run_figure8(workloads=names, comparison=comparison)
    figure10 = run_figure10(workloads=names, comparison=comparison)
    figure11 = run_figure11(workloads=names, comparison=comparison)
    memtraffic = run_memtraffic(workloads=names, comparison=comparison)
    figure9 = (
        run_figure9(
            workloads=names, config=system_config, scale=scale, seed=seed, engine=engine
        )
        if include_figure9
        else None
    )

    return ReproductionReport(
        figure7=figure7,
        figure8=figure8,
        figure9=figure9,
        figure10=figure10,
        figure11=figure11,
        memtraffic=memtraffic,
        table1=run_table1(system_config),
        table2=run_table2(workloads=names, scale=scale),
        scale=scale,
        engine_stats=batch.stats,
    )


# ----------------------------------------------------------------- markdown


def _markdown_figure7(report: ReproductionReport) -> list[str]:
    lines = [
        "## E1 — Figure 7: speedup over no prefetching",
        "",
        "| benchmark | " + " | ".join(mode.value for mode in FIGURE7_MODES) + " |",
        "|---|" + "---|" * len(FIGURE7_MODES),
    ]
    for name, row in report.figure7.speedups.items():
        cells = []
        for mode in FIGURE7_MODES:
            measured = row.get(mode.value)
            paper = paper_values.FIGURE7_SPEEDUPS.get(name, {}).get(
                mode.value.replace("ghb-regular", "ghb").replace("ghb-large", "ghb")
            )
            if measured is None:
                cells.append("–")
            elif paper is not None:
                cells.append(f"{measured:.2f}× (paper ≈{paper:.1f}×)")
            else:
                cells.append(f"{measured:.2f}×")
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    lines += [
        "",
        f"Measured geometric means: manual {report.figure7.geomean(PrefetchMode.MANUAL):.2f}×, "
        f"converted {report.figure7.geomean(PrefetchMode.CONVERTED):.2f}×, "
        f"pragma {report.figure7.geomean(PrefetchMode.PRAGMA):.2f}× "
        f"(paper: 3.0×, 2.5×, 1.9×).",
        "",
    ]
    if report.figure7.software_overhead:
        lines.append("Software-prefetch dynamic-instruction overhead (E11):")
        lines.append("")
        for name, overhead in sorted(report.figure7.software_overhead.items()):
            paper = paper_values.SOFTWARE_PREFETCH_OVERHEAD.get(name)
            suffix = f" (paper +{paper * 100:.0f} %)" if paper is not None else ""
            lines.append(f"- {name}: +{overhead * 100:.0f} %{suffix}")
        lines.append("")
    return lines


def _markdown_figure8(report: ReproductionReport) -> list[str]:
    lines = [
        "## E2/E3 — Figure 8: prefetch utilisation and L1 hit rates",
        "",
        "| benchmark | utilisation | L1 hit (no PF) | L1 hit (prog PF) | L2 hit (no PF) | L2 hit (prog PF) |",
        "|---|---|---|---|---|---|",
    ]
    for name, utilisation in report.figure8.utilisation.items():
        l1_before, l1_after = report.figure8.hit_rates[name]
        l2_before, l2_after = report.figure8.l2_hit_rates[name]
        lines.append(
            f"| {name} | {utilisation:.2f} | {l1_before:.2f} | {l1_after:.2f} "
            f"| {l2_before:.2f} | {l2_after:.2f} |"
        )
    lines.append("")
    return lines


def _markdown_figure9(report: ReproductionReport) -> list[str]:
    if report.figure9 is None:
        return []
    data = report.figure9
    frequencies = sorted({f for sweep in data.frequency_sweeps.values() for f in sweep})
    lines = [
        "## E4/E5 — Figure 9: PPU frequency and count scaling",
        "",
        "| benchmark | " + " | ".join(f"{f:g} GHz" for f in frequencies) + " |",
        "|---|" + "---|" * len(frequencies),
    ]
    for name, sweep in data.frequency_sweeps.items():
        cells = [f"{sweep[f]:.2f}×" if f in sweep else "–" for f in frequencies]
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    lines.append("")
    if data.count_sweep:
        counts = sorted({count for count, _ in data.count_sweep})
        sweep_frequencies = sorted({f for _, f in data.count_sweep})
        lines += [
            f"Figure 9(b) on {data.count_sweep_workload}:",
            "",
            "| PPUs | " + " | ".join(f"{f:g} GHz" for f in sweep_frequencies) + " |",
            "|---|" + "---|" * len(sweep_frequencies),
        ]
        for count in counts:
            cells = [
                f"{data.count_sweep.get((count, f), 0.0):.2f}×" for f in sweep_frequencies
            ]
            lines.append(f"| {count} | " + " | ".join(cells) + " |")
        lines.append("")
    return lines


def _markdown_figure10(report: ReproductionReport) -> list[str]:
    lines = [
        "## E6 — Figure 10: PPU activity factors (manual, lowest-free-ID scheduling)",
        "",
        "| benchmark | min | q1 | median | q3 | max | unused PPUs |",
        "|---|---|---|---|---|---|---|",
    ]
    for name in report.figure10.activity:
        stats = report.figure10.summary(name)
        lines.append(
            f"| {name} | {stats['min']:.2f} | {stats['q1']:.2f} | {stats['median']:.2f} "
            f"| {stats['q3']:.2f} | {stats['max']:.2f} | {report.figure10.unused_ppus(name)} |"
        )
    lines.append("")
    return lines


def _markdown_figure11(report: ReproductionReport) -> list[str]:
    lines = [
        "## E7 — Figure 11: event triggering vs blocking",
        "",
        "| benchmark | blocked | events |",
        "|---|---|---|",
    ]
    for name, events in report.figure11.events.items():
        blocked = report.figure11.blocked.get(name)
        blocked_text = f"{blocked:.2f}×" if blocked is not None else "–"
        lines.append(f"| {name} | {blocked_text} | {events:.2f}× |")
    lines.append("")
    return lines


def _markdown_traffic(report: ReproductionReport) -> list[str]:
    lines = [
        "## E8 — Extra memory accesses (Section 7.2)",
        "",
        "| benchmark | extra DRAM traffic | paper |",
        "|---|---|---|",
    ]
    for name, extra in report.memtraffic.extra.items():
        paper = paper_values.EXTRA_MEMORY_ACCESSES.get(name)
        paper_text = f"+{paper * 100:.0f} %" if paper is not None else "negligible"
        lines.append(f"| {name} | {extra * 100:+.1f} % | {paper_text} |")
    lines.append("")
    return lines


def render_markdown(report: ReproductionReport) -> str:
    """Render the EXPERIMENTS.md body for a completed reproduction run."""

    lines = [
        "# EXPERIMENTS — measured reproduction results",
        "",
        f"All runs use the `{report.scale}` workload scale and `SystemConfig.scaled()` "
        "(see DESIGN.md for the scaling rationale).  Paper values are approximate "
        "readings of the published figures; the goal is to reproduce the *shape* "
        "of each result, not absolute simulator cycle counts.",
        "",
    ]
    lines += _markdown_figure7(report)
    lines += _markdown_figure8(report)
    lines += _markdown_figure9(report)
    lines += _markdown_figure10(report)
    lines += _markdown_figure11(report)
    lines += _markdown_traffic(report)
    return "\n".join(lines)


def write_markdown(report: ReproductionReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_markdown(report))
