"""Figure 7: speedup of every prefetching scheme over no prefetching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.comparison import ComparisonResult, run_comparison
from ..sim.engine import SimEngine
from ..sim.modes import FIGURE7_MODES, PrefetchMode
from ..sim.results import geometric_mean
from ..workloads import registry
from . import paper_values


@dataclass
class Figure7Data:
    """Per-benchmark speedups for each prefetching scheme."""

    speedups: dict[str, dict[str, Optional[float]]] = field(default_factory=dict)
    software_overhead: dict[str, float] = field(default_factory=dict)
    comparison: Optional[ComparisonResult] = None

    def geomean(self, mode: PrefetchMode) -> float:
        values = [
            row[mode.value]
            for row in self.speedups.values()
            if row.get(mode.value) is not None
        ]
        return geometric_mean([value for value in values if value is not None])


def run_figure7(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    comparison: Optional[ComparisonResult] = None,
    engine: Optional[SimEngine] = None,
) -> Figure7Data:
    """Reproduce Figure 7 (and the Section 7.1 instruction-overhead numbers).

    Pass a shared ``engine`` so the plan's simulations are deduplicated (and
    optionally parallelised/cached) with those of the other figures.
    """

    names = list(workloads) if workloads is not None else registry.paper_names()
    if comparison is None:
        comparison = run_comparison(
            names, FIGURE7_MODES, config=config, scale=scale, seed=seed, engine=engine
        )

    data = Figure7Data(comparison=comparison)
    for name in names:
        row: dict[str, Optional[float]] = {}
        for mode in FIGURE7_MODES:
            row[mode.value] = comparison.speedup(name, mode)
        data.speedups[name] = row

        baseline = comparison.result(name, PrefetchMode.NONE)
        software = comparison.result(name, PrefetchMode.SOFTWARE)
        if baseline is not None and software is not None and baseline.instructions:
            data.software_overhead[name] = (
                software.instructions / baseline.instructions - 1.0
            )
    return data


def format_figure7(data: Figure7Data) -> str:
    """Render the Figure 7 table (one row per benchmark, one column per scheme)."""

    modes = [mode.value for mode in FIGURE7_MODES]
    header = f"{'benchmark':<12}" + "".join(f"{mode:>12}" for mode in modes)
    lines = ["Figure 7: speedup over no prefetching", header, "-" * len(header)]
    for name, row in data.speedups.items():
        cells = []
        for mode in modes:
            value = row.get(mode)
            cells.append(f"{value:>12.2f}" if value is not None else f"{'--':>12}")
        lines.append(f"{name:<12}" + "".join(cells))
    geomeans = []
    for mode in FIGURE7_MODES:
        value = data.geomean(mode)
        geomeans.append(f"{value:>12.2f}" if value else f"{'--':>12}")
    lines.append("-" * len(header))
    lines.append(f"{'geomean':<12}" + "".join(geomeans))
    paper = paper_values.PAPER_GEOMEAN
    lines.append(
        f"(paper geomeans: manual {paper['manual']:.1f}x, converted {paper['converted']:.1f}x, "
        f"pragma {paper['pragma']:.1f}x)"
    )
    if data.software_overhead:
        lines.append("")
        lines.append("Software-prefetch dynamic instruction overhead (Section 7.1):")
        for name, overhead in sorted(data.software_overhead.items()):
            lines.append(f"  {name:<12} +{overhead * 100:5.1f} %")
    return "\n".join(lines)
