"""Table 1: the simulated system configuration."""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig


def run_table1(config: Optional[SystemConfig] = None) -> dict[str, dict[str, object]]:
    """Return the configuration grouped the way Table 1 groups it."""

    system = config if config is not None else SystemConfig.scaled()
    return {
        "Main Core": {
            "Core": f"{system.core.issue_width}-wide, out-of-order, {system.core.frequency_ghz} GHz",
            "ROB": f"{system.core.rob_entries} entries",
            "Load queue": f"{system.core.load_queue_entries} entries",
            "Store queue": f"{system.core.store_queue_entries} entries",
        },
        "Memory & OS": {
            "L1 cache": (
                f"{system.l1.size_bytes // 1024} KB, {system.l1.associativity}-way, "
                f"{system.l1.hit_latency}-cycle hit, {system.l1.mshrs} MSHRs"
            ),
            "L2 cache": (
                f"{system.l2.size_bytes // 1024} KB, {system.l2.associativity}-way, "
                f"{system.l2.hit_latency}-cycle hit, {system.l2.mshrs} MSHRs"
            ),
            "L1 TLB": f"{system.tlb.l1_entries} entries, fully associative",
            "L2 TLB": f"{system.tlb.l2_entries} entries, {system.tlb.l2_hit_latency}-cycle hit",
            "DRAM": (
                f"{system.dram.access_latency_cycles}-cycle access, {system.dram.channels} channels, "
                f"{system.dram.line_service_cycles} cycles/line"
            ),
        },
        "Prefetcher": {
            "Observation queue": f"{system.prefetcher.observation_queue_entries} entries",
            "Prefetch queue": f"{system.prefetcher.prefetch_queue_entries} entries",
            "PPUs": (
                f"{system.prefetcher.num_ppus} in-order units @ "
                f"{system.prefetcher.ppu_frequency_ghz} GHz"
            ),
            "Stride prefetcher": (
                f"reference prediction table, {system.stride.table_entries} entries, "
                f"degree {system.stride.degree}"
            ),
            "GHB prefetcher": (
                f"Markov G/AC, depth {system.ghb.depth}, width {system.ghb.width}, "
                f"index/GHB {system.ghb.index_entries}/{system.ghb.history_entries}"
            ),
        },
    }


def format_table1(table: Optional[dict[str, dict[str, object]]] = None) -> str:
    data = table if table is not None else run_table1()
    lines = ["Table 1: simulated system configuration"]
    for group, entries in data.items():
        lines.append(f"\n[{group}]")
        for key, value in entries.items():
            lines.append(f"  {key:<20} {value}")
    return "\n".join(lines)
