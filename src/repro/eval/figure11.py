"""Figure 11: event triggering vs blocking on intermediate loads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.comparison import ComparisonResult, run_comparison
from ..sim.engine import SimEngine
from ..sim.modes import PrefetchMode
from ..workloads import registry


@dataclass
class Figure11Data:
    """Speedups with events vs with PPUs blocking on intermediate loads."""

    events: dict[str, float] = field(default_factory=dict)
    blocked: dict[str, float] = field(default_factory=dict)


def run_figure11(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    comparison: Optional[ComparisonResult] = None,
    engine: Optional[SimEngine] = None,
) -> Figure11Data:
    names = list(workloads) if workloads is not None else registry.paper_names()
    if comparison is None:
        comparison = run_comparison(
            names,
            [PrefetchMode.MANUAL, PrefetchMode.MANUAL_BLOCKED],
            config=config,
            scale=scale,
            seed=seed,
            engine=engine,
        )
    data = Figure11Data()
    for name in names:
        events = comparison.speedup(name, PrefetchMode.MANUAL)
        blocked = comparison.speedup(name, PrefetchMode.MANUAL_BLOCKED)
        if events is not None:
            data.events[name] = events
        if blocked is not None:
            data.blocked[name] = blocked
    return data


def format_figure11(data: Figure11Data) -> str:
    header = f"{'benchmark':<12}{'blocked':>10}{'events':>10}"
    lines = [
        "Figure 11: speedup with and without blocking on intermediate loads",
        header,
        "-" * len(header),
    ]
    for name in data.events:
        blocked = data.blocked.get(name)
        blocked_text = f"{blocked:>10.2f}" if blocked is not None else f"{'--':>10}"
        lines.append(f"{name:<12}{blocked_text}{data.events[name]:>10.2f}")
    return "\n".join(lines)
