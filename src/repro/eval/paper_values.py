"""Reference values read off the paper's figures.

These are approximate (the paper publishes figures, not tables of numbers) and
are used only to report paper-vs-measured comparisons in EXPERIMENTS.md and to
sanity-check the *shape* of the reproduction — which schemes win, roughly by
how much, and where the outliers are.  They are not pass/fail thresholds for
absolute values.
"""

from __future__ import annotations

#: Figure 7 speedups over no prefetching (approximate, read off the figure).
FIGURE7_SPEEDUPS: dict[str, dict[str, float]] = {
    "g500-csr": {"stride": 1.1, "software": 1.2, "pragma": 1.5, "converted": 2.3, "manual": 2.5},
    "g500-list": {"stride": 1.0, "software": 1.1, "pragma": 1.1, "converted": 1.1, "manual": 1.7},
    "hj2": {"stride": 1.1, "software": 1.4, "pragma": 3.7, "converted": 3.8, "manual": 3.9},
    "hj8": {"stride": 1.0, "software": 1.1, "pragma": 1.3, "converted": 3.3, "manual": 3.8},
    "pagerank": {"stride": 1.2, "pragma": 2.2, "manual": 2.4},
    "randacc": {"stride": 1.1, "software": 2.2, "pragma": 2.3, "converted": 2.9, "manual": 3.0},
    "intsort": {"stride": 1.4, "software": 2.0, "pragma": 2.6, "converted": 2.7, "manual": 2.8},
    "conjgrad": {"stride": 1.3, "software": 1.5, "pragma": 2.4, "converted": 2.5, "manual": 2.7},
}

#: Geometric-mean speedups quoted in the paper's text.
PAPER_GEOMEAN = {"manual": 3.0, "converted": 2.5, "pragma": 1.9}

#: Figure 8(a): proportion of prefetches used before L1 eviction (approximate).
FIGURE8A_UTILISATION: dict[str, float] = {
    "g500-csr": 0.80,
    "g500-list": 0.30,
    "hj2": 0.95,
    "hj8": 0.90,
    "pagerank": 0.90,
    "randacc": 0.95,
    "intsort": 0.95,
    "conjgrad": 0.90,
}

#: Figure 8(b): L1 read hit rate without / with the programmable prefetcher.
FIGURE8B_HIT_RATES: dict[str, tuple[float, float]] = {
    "g500-csr": (0.55, 0.85),
    "g500-list": (0.34, 0.42),
    "hj2": (0.35, 0.90),
    "hj8": (0.45, 0.90),
    "pagerank": (0.50, 0.85),
    "randacc": (0.25, 0.90),
    "intsort": (0.45, 0.90),
    "conjgrad": (0.60, 0.90),
}

#: Section 7.1: dynamic instruction overhead of software prefetching.
SOFTWARE_PREFETCH_OVERHEAD = {"intsort": 1.13, "randacc": 0.83, "hj2": 0.56}

#: Section 7.2: extra memory accesses of the programmable prefetcher.
EXTRA_MEMORY_ACCESSES = {"g500-list": 0.40, "g500-csr": 0.16}

#: Figure 11: manual (event-triggered) speedups survive; blocking collapses
#: the benefit for every pattern that needs chained intermediate loads.
FIGURE11_BLOCKED_SPEEDUPS: dict[str, float] = {
    "g500-csr": 1.2,
    "g500-list": 1.1,
    "hj2": 2.2,
    "hj8": 1.2,
    "pagerank": 2.0,
    "randacc": 2.4,
    "intsort": 2.3,
    "conjgrad": 2.2,
}
