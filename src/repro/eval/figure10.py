"""Figure 10: how much of the run each PPU spends awake (activity factors)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.comparison import ComparisonResult, run_comparison
from ..sim.engine import SimEngine
from ..sim.modes import PrefetchMode
from ..workloads import registry


@dataclass
class Figure10Data:
    """Per-benchmark distribution of PPU activity factors (manual mode)."""

    activity: dict[str, list[float]] = field(default_factory=dict)

    def summary(self, workload: str) -> dict[str, float]:
        """Min / quartiles / median / max, as Figure 10's box plot shows."""

        factors = sorted(self.activity.get(workload, []))
        if not factors:
            return {"min": 0.0, "q1": 0.0, "median": 0.0, "q3": 0.0, "max": 0.0}

        def percentile(fraction: float) -> float:
            if len(factors) == 1:
                return factors[0]
            position = fraction * (len(factors) - 1)
            low = int(position)
            high = min(low + 1, len(factors) - 1)
            weight = position - low
            return factors[low] * (1 - weight) + factors[high] * weight

        return {
            "min": factors[0],
            "q1": percentile(0.25),
            "median": percentile(0.5),
            "q3": percentile(0.75),
            "max": factors[-1],
        }

    def unused_ppus(self, workload: str) -> int:
        """PPUs never woken during the run (the paper calls these out)."""

        return sum(1 for factor in self.activity.get(workload, []) if factor == 0.0)


def run_figure10(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    comparison: Optional[ComparisonResult] = None,
    engine: Optional[SimEngine] = None,
) -> Figure10Data:
    names = list(workloads) if workloads is not None else registry.paper_names()
    if comparison is None:
        comparison = run_comparison(
            names, [PrefetchMode.MANUAL], config=config, scale=scale, seed=seed,
            engine=engine,
        )
    data = Figure10Data()
    for name in names:
        manual = comparison.result(name, PrefetchMode.MANUAL)
        if manual is None:
            continue
        data.activity[name] = manual.activity_factors
    return data


def format_figure10(data: Figure10Data) -> str:
    header = (
        f"{'benchmark':<12}{'min':>8}{'q1':>8}{'median':>8}{'q3':>8}{'max':>8}{'unused':>8}"
    )
    lines = [
        "Figure 10: fraction of time each PPU is awake (manual, 12 PPUs @ 1GHz)",
        header,
        "-" * len(header),
    ]
    for name in data.activity:
        stats = data.summary(name)
        lines.append(
            f"{name:<12}{stats['min']:>8.2f}{stats['q1']:>8.2f}{stats['median']:>8.2f}"
            f"{stats['q3']:>8.2f}{stats['max']:>8.2f}{data.unused_ppus(name):>8d}"
        )
    return "\n".join(lines)
