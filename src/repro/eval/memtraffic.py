"""Extra memory accesses added by the programmable prefetcher (Section 7.2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..config import SystemConfig
from ..sim.comparison import ComparisonResult, run_comparison
from ..sim.engine import SimEngine
from ..sim.modes import PrefetchMode
from ..workloads import registry


@dataclass
class MemTrafficData:
    """Fractional increase in DRAM accesses with the programmable prefetcher."""

    extra: dict[str, float] = field(default_factory=dict)
    dram_accesses: dict[str, tuple[float, float]] = field(default_factory=dict)


def run_memtraffic(
    *,
    workloads: Optional[Iterable[str]] = None,
    config: Optional[SystemConfig] = None,
    scale: str = "default",
    seed: int = 42,
    comparison: Optional[ComparisonResult] = None,
    engine: Optional[SimEngine] = None,
) -> MemTrafficData:
    names = list(workloads) if workloads is not None else registry.paper_names()
    if comparison is None:
        comparison = run_comparison(
            names, [PrefetchMode.MANUAL], config=config, scale=scale, seed=seed,
            engine=engine,
        )
    data = MemTrafficData()
    for name in names:
        baseline = comparison.result(name, PrefetchMode.NONE)
        manual = comparison.result(name, PrefetchMode.MANUAL)
        if baseline is None or manual is None:
            continue
        data.extra[name] = manual.extra_memory_accesses(baseline)
        data.dram_accesses[name] = (baseline.dram_accesses, manual.dram_accesses)
    return data


def format_memtraffic(data: MemTrafficData) -> str:
    header = f"{'benchmark':<12}{'no-PF DRAM':>12}{'manual DRAM':>12}{'extra':>10}"
    lines = [
        "Section 7.2: extra memory accesses from programmable prefetching",
        header,
        "-" * len(header),
    ]
    for name, extra in data.extra.items():
        before, after = data.dram_accesses[name]
        lines.append(f"{name:<12}{before:>12.0f}{after:>12.0f}{extra * 100:>9.1f}%")
    return "\n".join(lines)
