"""Table 2: the benchmarks, their access patterns and inputs."""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..workloads import registry
from ..workloads.base import Workload


def run_table2(
    *,
    workloads: Optional[Iterable[str]] = None,
    scale: str = "default",
    prebuilt: Optional[Mapping[str, Workload]] = None,
) -> list[dict[str, str]]:
    """Return one row per benchmark: source, pattern, paper input, scaled input.

    ``prebuilt`` lets callers that already hold workload objects (the batch
    drivers) describe them without constructing fresh instances.
    """

    names = list(workloads) if workloads is not None else registry.paper_names()
    rows: list[dict[str, str]] = []
    for name in names:
        workload = (prebuilt or {}).get(name)
        if workload is None or workload.scale.name != scale:
            # Description only — no need to build the data structures.
            workload = registry.get(name).factory(scale=scale)
        rows.append(workload.description())
    return rows


def format_table2(rows: Optional[list[dict[str, str]]] = None) -> str:
    data = rows if rows is not None else run_table2()
    header = f"{'benchmark':<12}{'pattern':<42}{'paper input':<28}{'reproduction input'}"
    lines = ["Table 2: benchmarks evaluated", header, "-" * len(header)]
    for row in data:
        lines.append(
            f"{row['name']:<12}{row['pattern']:<42}{row['paper_input']:<28}{row['repro_input']}"
        )
    return "\n".join(lines)
