#!/usr/bin/env python3
"""Graph scenario: breadth-first search over CSR arrays vs linked edge lists.

Reproduces the paper's Graph500 discussion: the CSR layout exposes
memory-level parallelism that the four-deep event chain (work queue → vertex
offsets → edge lines → visited flags) can mine, whereas the linked-list layout
serialises every edge access, so prefetches arrive early enough only to help
the L2, and the prefetcher adds measurable extra traffic (Section 7.1/7.2).

Also sweeps the PPU clock for the CSR traversal, the paper's Figure 9(a)
observation that some workloads keep scaling with prefetcher compute.
"""

import argparse

from repro.config import SystemConfig
from repro.sim import PrefetchMode, simulate
from repro.sim.sweeps import ppu_frequency_sweep
from repro.workloads import build_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "default"])
    args = parser.parse_args()

    config = SystemConfig.scaled()
    results = {}
    for name in ("g500-csr", "g500-list"):
        workload = build_workload(name, scale=args.scale)
        baseline = simulate(workload, PrefetchMode.NONE, config)
        manual = simulate(workload, PrefetchMode.MANUAL, config)
        results[name] = (workload, baseline, manual)
        print(f"\n{name}: {workload.repro_input}")
        print(f"  speedup                {manual.speedup_over(baseline):5.2f}x")
        print(f"  L1 read hit rate       {baseline.l1_read_hit_rate:.2f} -> {manual.l1_read_hit_rate:.2f}")
        print(f"  L2 read hit rate       {baseline.l2_read_hit_rate:.2f} -> {manual.l2_read_hit_rate:.2f}")
        print(f"  prefetch utilisation   {manual.l1_prefetch_utilisation:.2f}")
        print(f"  extra memory accesses  {manual.extra_memory_accesses(baseline) * 100:+.1f} %")
        print(f"  PPU activity (first 4) "
              + " ".join(f"{factor:.2f}" for factor in manual.activity_factors[:4]))

    workload, baseline, _ = results["g500-csr"]
    print("\ng500-csr speedup vs PPU clock (12 PPUs):")
    sweep = ppu_frequency_sweep(
        workload, frequencies=[0.25, 0.5, 1.0, 2.0], config=config, baseline=baseline
    )
    for frequency, speedup in sorted(sweep.items()):
        print(f"  {frequency:4.2f} GHz  {speedup:5.2f}x")


if __name__ == "__main__":
    main()
