#!/usr/bin/env python3
"""Reproduce the paper's evaluation and (optionally) write EXPERIMENTS.md.

Runs every experiment of Section 7 — Figures 7, 8, 10, 11 and the extra
memory-traffic analysis, plus Tables 1 and 2 — and prints the resulting
tables.  The Figure 9 sweeps are included with ``--figure9`` (they simulate
dozens of extra configurations, so they are optional for quick runs).

All simulations are declared as one shared batch-engine plan, so common
points (every figure's no-prefetch baselines, the Figure 9 reference runs)
are simulated exactly once.  ``--parallel`` farms the plan across CPU cores
and ``--cache DIR`` persists results so a repeated run simulates nothing.

Long sweeps are durable: ``--checkpoint`` records each completed request in
a run manifest, and after a crash or ``kill -9`` the same command with
``--resume`` executes only the missing requests (see docs/resilience.md).
``--deadline`` bounds the run; the exit code is nonzero when any request
failed, with the failure labels printed.

Usage::

    python examples/reproduce_paper.py --scale small
    python examples/reproduce_paper.py --scale default --figure9 --parallel \\
        --cache .sim-cache --write-experiments
    python examples/reproduce_paper.py --scale default --cache .sim-cache \\
        --checkpoint .sim-ckpt --resume   # after an interrupted run
"""

import argparse

from repro.eval.report import (
    build_engine,
    failure_exit_code,
    run_report,
    render_markdown,
    write_markdown,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "default"],
                        help="workload scale (default: small)")
    parser.add_argument("--figure9", action="store_true",
                        help="also run the PPU frequency/count sweeps (slow)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of workloads to run (default: all eight)")
    parser.add_argument("--parallel", action="store_true",
                        help="execute the simulation plan across CPU cores")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (implies --parallel; default: all cores)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="persistent result-cache directory (warm reruns simulate nothing)")
    parser.add_argument("--trace-store", metavar="DIR|off", default=None,
                        help="trace-artifact store directory, or 'off' to disable the "
                             "tier (default: $REPRO_TRACE_STORE, falling back to the "
                             "per-user cache directory)")
    parser.add_argument("--service", metavar="ADDR[,ADDR...]", default=None,
                        help="submit simulations to running 'repro serve' daemons at "
                             "the given ordered endpoint list (each host:port or "
                             "unix:/path) instead of simulating locally, failing over "
                             "between endpoints; --parallel/--jobs/--cache/"
                             "--trace-store then apply on the daemon side — except "
                             "that they also configure the local fallback used when "
                             "every endpoint is unreachable")
    parser.add_argument("--checkpoint", metavar="DIR", nargs="?", const="", default=None,
                        help="record completed requests in a run manifest under DIR "
                             "(default: $REPRO_CHECKPOINT_DIR or the per-user cache); "
                             "an interrupted run restarts with --resume")
    parser.add_argument("--resume", action="store_true",
                        help="replay the previous run's checkpoint manifest against the "
                             "result cache and execute only the missing requests "
                             "(implies --checkpoint)")
    parser.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                        help="overall simulation budget; requests past it fail with a "
                             "retryable label instead of running (resume retries them)")
    parser.add_argument("--max-attempts", type=int, default=None, metavar="N",
                        help="with --parallel: execution attempts per chunk before its "
                             "requests fail (hung/crashed workers requeue; default 3)")
    parser.add_argument("--write-experiments", metavar="PATH", nargs="?",
                        const="EXPERIMENTS.md", default=None,
                        help="write the Markdown report to PATH (default EXPERIMENTS.md)")
    parser.add_argument("--perf-track", action="store_true",
                        help="after the report, time the benchmark suite at the same "
                             "scale and append a BENCH_<n>.json snapshot to the "
                             "repository's performance trajectory")
    args = parser.parse_args()

    parallel = args.parallel or args.jobs is not None
    checkpoint_dir = args.checkpoint
    if checkpoint_dir == "":  # bare --checkpoint: use the default directory
        from repro.sim.engine import default_checkpoint_dir

        checkpoint_dir = str(default_checkpoint_dir())
    engine = build_engine(parallel=parallel, workers=args.jobs, cache_dir=args.cache,
                          trace_store_dir=args.trace_store, service=args.service,
                          checkpoint_dir=checkpoint_dir, resume=args.resume,
                          deadline=args.deadline, max_attempts=args.max_attempts)
    report = run_report(
        workloads=args.workloads,
        scale=args.scale,
        include_figure9=args.figure9,
        engine=engine,
    )
    print(report.format_console())

    stats = report.engine_stats
    if stats is not None:
        print()
        print("Batch-engine statistics for the shared plan:")
        print(f"  submitted:        {stats.submitted}")
        print(f"  unique points:    {stats.unique}")
        print(f"  deduplicated:     {stats.deduplicated}")
        print(f"  cache hits:       {stats.cache_hits}")
        print(f"  simulated:        {stats.executed} ({stats.unavailable} unavailable)")
        print(f"  failed:           {stats.failed}")
        if stats.resumed:
            print(f"  resumed:          {stats.resumed} (from checkpoint manifest)")
        if stats.requeues or stats.hung_killed:
            print(f"  requeued chunks:  {stats.requeues} "
                  f"({stats.hung_killed} hung workers killed)")
        if stats.expired:
            print(f"  deadline-expired: {stats.expired}")
        if stats.rejected:
            print(f"  service backoffs: {stats.rejected}")
        if stats.failed_over:
            print(f"  failed over:      {stats.failed_over} (endpoint attempts abandoned)")
        if stats.peer_hits:
            print(f"  peer hits:        {stats.peer_hits} (replicated from peer daemons)")
        if stats.degraded_local:
            print(f"  degraded local:   {stats.degraded_local} (ran locally; fleet down)")
        print(f"  traces:           {stats.trace_hits} warm, {stats.trace_built} emitted "
              f"({stats.trace_stored} stored)")
        print(f"  runner:           {stats.runner}")
        for label, count in sorted(stats.failures.items()):
            suffix = f" (×{count})" if count > 1 else ""
            print(f"  FAILED: {label}{suffix}")

    if args.write_experiments:
        write_markdown(report, args.write_experiments)
        print(f"\nWrote {args.write_experiments}")
    else:
        # Show the paper-vs-measured summary either way.
        print("\n" + render_markdown(report))

    if args.perf_track:
        from pathlib import Path

        from repro.perf import append_trajectory_point, format_diff, format_snapshot

        snapshot, diff, path = append_trajectory_point(
            Path(__file__).resolve().parent.parent,
            scale=args.scale,
            workloads=args.workloads,
            label=f"reproduce_paper --scale {args.scale}",
        )
        print()
        print(format_snapshot(snapshot))
        if diff is not None:
            print()
            print(format_diff(diff))
        print(f"\nWrote {path}")

    return failure_exit_code(report.engine_stats)


if __name__ == "__main__":
    raise SystemExit(main())
