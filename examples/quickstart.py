#!/usr/bin/env python3
"""Quickstart: program the prefetcher by hand for the paper's Figure 4 loop.

The loop is ``for (x = 0; x < N; x++) acc += C[B[A[x]]];`` — a sequential walk
of ``A`` feeding two levels of indirection.  The script

1. builds the three arrays in a simulated address space,
2. records the loop's dynamic trace (loads with their data dependences),
3. writes the three PPU event kernels of Figure 4(b) with the kernel builder,
4. runs the trace with no prefetching, with a stride prefetcher, and with the
   event-triggered programmable prefetcher, and
5. prints the speedups, hit rates and prefetch accuracy.
"""

import random

from repro.config import SystemConfig
from repro.cpu import OutOfOrderCore, TraceBuilder
from repro.memory import AddressSpace, MemoryHierarchy
from repro.prefetch import StridePrefetcher
from repro.programmable import EventTriggeredPrefetcher, KernelBuilder, PrefetcherConfiguration

NUM_ELEMENTS = 32768
ITERATIONS = 8000


def build_arrays(space: AddressSpace, rng: random.Random):
    a = space.allocate_array("A", NUM_ELEMENTS, values=[rng.randrange(NUM_ELEMENTS) for _ in range(NUM_ELEMENTS)])
    b = space.allocate_array("B", NUM_ELEMENTS, values=[rng.randrange(NUM_ELEMENTS) for _ in range(NUM_ELEMENTS)])
    c = space.allocate_array("C", NUM_ELEMENTS, values=[rng.randrange(1 << 20) for _ in range(NUM_ELEMENTS)])
    return a, b, c


def record_trace(space, a, b, c):
    tb = TraceBuilder()
    for x in range(ITERATIONS):
        load_a = tb.load(a.addr_of(x))
        load_b = tb.load(b.addr_of(a[x]), deps=[load_a])
        load_c = tb.load(c.addr_of(b[a[x]]), deps=[load_b])
        tb.compute(4, deps=[load_c])
        tb.branch()
    return tb.build()


def program_prefetcher(a, b, c) -> PrefetcherConfiguration:
    """The three event kernels of Figure 4(b), written with the kernel builder."""

    config = PrefetcherConfiguration()
    stream = config.add_stream("a_stream", default_distance=8)
    base_a = config.set_global("base_A", a.base_addr)
    base_b = config.set_global("base_B", b.base_addr)
    base_c = config.set_global("base_C", c.base_addr)

    # on_B_prefetch: the value of B[...] indexes C.
    k = KernelBuilder("on_B_prefetch")
    k.prefetch(k.add(k.get_global(base_c), k.shl(k.get_data(), 3)))
    config.add_kernel(k.build())
    tag_b = config.add_tag("fill_B", "on_B_prefetch", stream="a_stream")

    # on_A_prefetch: the value of A[...] indexes B.
    k = KernelBuilder("on_A_prefetch")
    k.prefetch(k.add(k.get_global(base_b), k.shl(k.get_data(), 3)), tag=tag_b)
    config.add_kernel(k.build())
    tag_a = config.add_tag("fill_A", "on_A_prefetch", stream="a_stream")

    # on_A_load: recover x from the observed address, prefetch A[x + lookahead].
    k = KernelBuilder("on_A_load")
    base = k.get_global(base_a)
    index = k.shr(k.sub(k.get_vaddr(), base), 3)
    k.prefetch(k.add(base, k.shl(k.add(index, k.get_lookahead(stream)), 3)), tag=tag_a)
    config.add_kernel(k.build())

    config.add_range("A", a.base_addr, a.end_addr, load_kernel="on_A_load",
                     stream="a_stream", time_iterations=True, chain_start=True)
    config.add_range("C", c.base_addr, c.end_addr, stream="a_stream", chain_end=True)
    config.validate()
    return config


def main() -> None:
    rng = random.Random(42)
    system = SystemConfig.scaled()
    space = AddressSpace()
    a, b, c = build_arrays(space, rng)
    trace = record_trace(space, a, b, c)
    print(f"trace: {len(trace)} ops, {trace.instruction_count()} instructions")

    # 1. No prefetching.
    hierarchy = MemoryHierarchy(system, space)
    baseline = OutOfOrderCore(system.core, hierarchy).run(trace)
    print(f"no prefetching : {baseline.cycles:10.0f} cycles "
          f"(L1 hit rate {hierarchy.l1.stats.demand_read_hit_rate:.2f})")

    # 2. Stride prefetcher — only helps the sequential walk of A.
    hierarchy = MemoryHierarchy(system, space)
    StridePrefetcher(system.stride).attach(hierarchy)
    stride = OutOfOrderCore(system.core, hierarchy).run(trace)
    print(f"stride         : {stride.cycles:10.0f} cycles "
          f"({baseline.cycles / stride.cycles:.2f}x)")

    # 3. Event-triggered programmable prefetcher.
    hierarchy = MemoryHierarchy(system, space)
    engine = EventTriggeredPrefetcher(system, program_prefetcher(a, b, c))
    engine.attach(hierarchy)
    manual = OutOfOrderCore(system.core, hierarchy).run(trace)
    engine.finalize(manual.cycles)
    stats = engine.collect_stats()
    print(f"programmable   : {manual.cycles:10.0f} cycles "
          f"({baseline.cycles / manual.cycles:.2f}x, "
          f"L1 hit rate {hierarchy.l1.stats.demand_read_hit_rate:.2f}, "
          f"prefetch utilisation {hierarchy.l1.stats.prefetch_utilisation:.2f})")
    print(f"                 {stats['prefetches_issued']} prefetches issued, "
          f"{stats['events_executed']} PPU events, "
          f"look-ahead settled at {stats['lookahead']['a_stream']} elements")


if __name__ == "__main__":
    main()
