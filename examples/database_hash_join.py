#!/usr/bin/env python3
"""Database scenario: accelerating hash-join probes (the paper's Figure 1 kernel).

Runs the two hash-join workloads (HJ-2: inline buckets, HJ-8: per-bucket
linked lists) under every prefetching scheme the paper compares, and shows
how the compiler passes relate to hand-written kernels:

* software prefetching helps HJ-2 but cannot follow HJ-8's list walk;
* the conversion pass turns the same software prefetches into event chains
  that also reach the first list node;
* manual programming walks the whole chain with a self-re-triggering tagged
  kernel, which is where HJ-8's speedup comes from.
"""

import argparse

from repro.config import SystemConfig
from repro.sim import PrefetchMode, mode_available, simulate
from repro.workloads import build_workload

MODES = [
    PrefetchMode.STRIDE,
    PrefetchMode.GHB_REGULAR,
    PrefetchMode.SOFTWARE,
    PrefetchMode.PRAGMA,
    PrefetchMode.CONVERTED,
    PrefetchMode.MANUAL,
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "default"])
    args = parser.parse_args()

    config = SystemConfig.scaled()
    for name in ("hj2", "hj8"):
        workload = build_workload(name, scale=args.scale)
        baseline = simulate(workload, PrefetchMode.NONE, config)
        print(f"\n{name}: {workload.repro_input}")
        print(f"  {'no prefetching':<16} {baseline.cycles:12.0f} cycles   "
              f"L1 hit {baseline.l1_read_hit_rate:.2f}")
        for mode in MODES:
            if not mode_available(workload, mode):
                print(f"  {mode.label:<16} {'not expressible':>12}")
                continue
            result = simulate(workload, mode, config)
            print(f"  {mode.label:<16} {result.cycles:12.0f} cycles   "
                  f"{result.speedup_over(baseline):5.2f}x   "
                  f"L1 hit {result.l1_read_hit_rate:.2f}")

        # Show what the conversion pass produced for this join.
        from repro.compiler.convert import convert_software_prefetches

        loop, bindings = workload.loop_ir()
        compiled = convert_software_prefetches(loop, bindings)
        print(f"  conversion pass: chains {[list(c.arrays) for c in compiled.chains]}, "
              f"failures {[reason for _, reason in compiled.failures] or 'none'}")


if __name__ == "__main__":
    main()
