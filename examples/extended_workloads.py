#!/usr/bin/env python3
"""Compare the off-paper workloads under every prefetching scheme.

Runs the extended-workloads driver: each workload registered without the
paper-reference flag (BFS, SpMV, union-find out of the box) is simulated
with no prefetching, the stride prefetcher, the GHB prefetcher and the
programmable prefetcher running its manual PPU kernels.  All points flow
through one deduplicated batch-engine plan; ``--parallel`` spreads them
across cores and ``--cache DIR`` makes repeated runs free.

Usage::

    python examples/extended_workloads.py --scale small
    python examples/extended_workloads.py --scale tiny --parallel --cache .sim-cache
"""

import argparse

from repro.eval.extended import format_extended, run_extended
from repro.eval.report import build_engine
from repro.workloads import registry


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "default"],
                        help="workload scale (default: small)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help=f"workload names (default: {registry.extended_names()})")
    parser.add_argument("--parallel", action="store_true",
                        help="execute the simulation plan across CPU cores")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (implies --parallel; default: all cores)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="persistent result-cache directory")
    args = parser.parse_args()

    parallel = args.parallel or args.jobs is not None
    engine = build_engine(parallel=parallel, workers=args.jobs, cache_dir=args.cache)
    data = run_extended(workloads=args.workloads, scale=args.scale, engine=engine)
    print(format_extended(data))


if __name__ == "__main__":
    main()
