"""Differential tests: compiled kernels must match the interpreter exactly.

The compiler (``repro.programmable.compiler``) translates each kernel once
into specialised Python; its contract is *bit-identical observable behaviour*
with :func:`repro.programmable.interpreter.execute_kernel` — the same
prefetches (addresses and tags, in order), the same dynamic instruction
count (which feeds PPU busy time), the same abort flag, and no mutation of
the global register file.  This harness generates random-but-valid kernels
with hypothesis (the same setup as ``tests/test_registry.py``) and asserts
the two tiers agree on randomised contexts, including faulting and
watchdog-looping programs.
"""

from __future__ import annotations

import os
import pickle
from unittest import mock

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelRuntimeError
from repro.programmable.compiler import (
    COMPILER_ENV_VAR,
    compile_kernel,
    compiler_enabled,
    generate_source,
    interpreter_executor,
    kernel_executor,
    program_digest,
    run_compiled,
)
from repro.programmable.interpreter import (
    MAX_DYNAMIC_INSTRUCTIONS,
    KernelContext,
    default_lookahead,
    execute_kernel,
)
from repro.programmable.kernel import (
    NUM_LOCAL_REGISTERS,
    Instruction,
    KernelBuilder,
    KernelProgram,
    Opcode,
    Operand,
)
from repro.workloads import build_workload, registry

_U64 = (1 << 64) - 1

# --------------------------------------------------------------- strategies

_REGISTER = st.integers(min_value=0, max_value=NUM_LOCAL_REGISTERS - 1)
#: Immediates span negatives, zero, and >64-bit values so masking rules and
#: signed branch comparisons are exercised at their edges.
_IMMEDIATE = st.one_of(
    st.integers(min_value=-4, max_value=12),
    st.integers(min_value=-(1 << 65), max_value=1 << 65),
    st.sampled_from([0, 1, 7, 8, 63, 64, _U64, 1 << 63, -(1 << 63), -1]),
)
_OPERAND = st.one_of(
    st.builds(Operand.imm, _IMMEDIATE),
    st.builds(lambda r: Operand(False, r), _REGISTER),
)

_GENERATED_OPCODES = [
    opcode for opcode in Opcode if opcode not in (Opcode.HALT, Opcode.JUMP)
]


@st.composite
def kernel_programs(draw) -> KernelProgram:
    """A random, valid kernel: any ISA mix, branch targets in range, HALT last."""

    body_length = draw(st.integers(min_value=0, max_value=14))
    total = body_length + 1
    instructions = []
    for _ in range(body_length):
        opcode = draw(st.sampled_from(_GENERATED_OPCODES + [Opcode.JUMP]))
        instructions.append(
            Instruction(
                opcode,
                dst=draw(_REGISTER),
                a=draw(_OPERAND),
                b=draw(_OPERAND),
                target=draw(st.integers(min_value=0, max_value=total - 1)),
            )
        )
    instructions.append(Instruction(Opcode.HALT))
    program = KernelProgram("hyp_kernel", tuple(instructions))
    program.validate()
    return program


def _raising_lookahead(stream: int) -> int:
    raise KernelRuntimeError("lookahead fault for testing")


@st.composite
def kernel_contexts(draw) -> KernelContext:
    vaddr = draw(st.integers(min_value=0, max_value=1 << 40)) * 8
    line_base = vaddr - (vaddr % 64)
    if draw(st.booleans()):
        line_words = tuple(
            draw(
                st.lists(
                    st.integers(min_value=-(1 << 63), max_value=_U64),
                    min_size=8,
                    max_size=8,
                )
            )
        )
    else:
        line_words = None
    global_registers = draw(
        st.lists(st.integers(min_value=0, max_value=_U64), min_size=0, max_size=4)
    )
    lookahead = draw(
        st.sampled_from(
            [default_lookahead, lambda stream: (stream * 7 + 3) % 101, _raising_lookahead]
        )
    )
    return KernelContext(
        vaddr=vaddr,
        line_base=line_base,
        line_words=line_words,
        global_registers=global_registers,
        lookahead=lookahead,
    )


# ------------------------------------------------------------- differential


class TestDifferential:
    @settings(max_examples=120, deadline=None)
    @given(program=kernel_programs(), context=kernel_contexts())
    def test_compiled_matches_interpreter(self, program, context):
        globals_before = list(context.global_registers)
        interpreted = execute_kernel(program, context)
        compiled = run_compiled(program, context)
        assert compiled.prefetches == interpreted.prefetches
        assert compiled.instructions_executed == interpreted.instructions_executed
        assert compiled.aborted == interpreted.aborted
        # Kernels have no opcode that writes a global register; neither tier
        # may mutate the shared register list.
        assert list(context.global_registers) == globals_before

    @settings(max_examples=30, deadline=None)
    @given(program=kernel_programs(), context=kernel_contexts())
    def test_interpreter_executor_wrapper_matches(self, program, context):
        expected = execute_kernel(program, context)
        prefetches, executed, aborted = interpreter_executor(program)(
            context.vaddr,
            context.line_base,
            context.line_words,
            context.global_registers,
            context.lookahead,
        )
        assert (prefetches, executed, aborted) == (
            expected.prefetches,
            expected.instructions_executed,
            expected.aborted,
        )

    def test_watchdog_abort_is_identical(self):
        # A one-instruction infinite loop: JUMP 0.
        program = KernelProgram(
            "spin", (Instruction(Opcode.JUMP, target=0),)
        )
        program.validate()
        context = KernelContext(
            vaddr=0, line_base=0, line_words=None, global_registers=[]
        )
        interpreted = execute_kernel(program, context)
        compiled = run_compiled(program, context)
        assert interpreted.aborted and compiled.aborted
        assert (
            compiled.instructions_executed
            == interpreted.instructions_executed
            == MAX_DYNAMIC_INSTRUCTIONS
        )

    def test_fault_count_includes_faulting_instruction(self):
        k = KernelBuilder("faulty")
        k.imm(1)
        k.get_data()  # faults: no line forwarded
        k.prefetch(0)
        program = k.build()
        context = KernelContext(
            vaddr=0, line_base=0, line_words=None, global_registers=[]
        )
        interpreted = execute_kernel(program, context)
        compiled = run_compiled(program, context)
        assert interpreted.aborted and compiled.aborted
        assert compiled.instructions_executed == interpreted.instructions_executed == 2
        assert compiled.prefetches == interpreted.prefetches == []

    def test_registered_workload_kernels_agree(self, tiny_workloads):
        context = KernelContext(
            vaddr=0x4000,
            line_base=0x4000,
            line_words=tuple(range(8)),
            global_registers=[0x10000, 8, 3, 0xFFFF],
        )
        checked = 0
        for name in registry.names():
            configuration = tiny_workloads.get(name).manual_configuration()
            for program in configuration.kernels.values():
                interpreted = execute_kernel(program, context)
                compiled = run_compiled(program, context)
                assert compiled.prefetches == interpreted.prefetches, program.name
                assert (
                    compiled.instructions_executed == interpreted.instructions_executed
                ), program.name
                assert compiled.aborted == interpreted.aborted, program.name
                checked += 1
        assert checked >= 20


# ------------------------------------------------------------------ tooling


class TestCompilerMachinery:
    def test_digest_is_stable_and_content_keyed(self):
        k1 = KernelBuilder("dig")
        k1.prefetch(k1.imm(64))
        program = k1.build()
        k2 = KernelBuilder("dig")
        k2.prefetch(k2.imm(64))
        same = k2.build()
        k3 = KernelBuilder("dig")
        k3.prefetch(k3.imm(128))
        different = k3.build()
        assert program_digest(program) == program_digest(same)
        assert program_digest(program) != program_digest(different)
        assert len(program_digest(program)) == 64

    def test_compiled_closure_is_cached_by_digest(self):
        k1 = KernelBuilder("cache_me")
        k1.prefetch(k1.imm(4096))
        k2 = KernelBuilder("cache_me")
        k2.prefetch(k2.imm(4096))
        assert compile_kernel(k1.build()) is compile_kernel(k2.build())

    def test_generated_source_is_printable_python(self):
        workload = build_workload("randacc", scale="tiny")
        for program in workload.manual_configuration().kernels.values():
            source = generate_source(program)
            assert source.startswith("def _kernel_")
            compile(source, "<test>", "exec")  # must be valid Python

    def test_env_flag_selects_interpreter(self):
        k = KernelBuilder("switchable")
        k.prefetch(k.imm(64))
        program = k.build()
        with mock.patch.dict(os.environ, {COMPILER_ENV_VAR: "off"}):
            assert not compiler_enabled()
            executor = kernel_executor(program)
            assert executor is not compile_kernel(program)
        with mock.patch.dict(os.environ, {COMPILER_ENV_VAR: "on"}):
            assert compiler_enabled()
            assert kernel_executor(program) is compile_kernel(program)

    def test_simulation_identical_with_compiler_off(self, tiny_workloads, scaled_config):
        from repro.sim import PrefetchMode, simulate

        workload = tiny_workloads.get("randacc")
        on = simulate(workload, PrefetchMode.MANUAL, scaled_config)
        with mock.patch.dict(os.environ, {COMPILER_ENV_VAR: "off"}):
            off = simulate(workload, PrefetchMode.MANUAL, scaled_config)
        assert on.as_dict() == off.as_dict()


class TestLookaheadDefault:
    def test_default_is_module_level_named_function(self):
        context = KernelContext(
            vaddr=0, line_base=0, line_words=None, global_registers=[]
        )
        assert context.lookahead is default_lookahead
        assert default_lookahead(0) == 1
        assert default_lookahead(17) == 1

    def test_context_with_default_lookahead_pickles(self):
        context = KernelContext(
            vaddr=64, line_base=64, line_words=(1, 2, 3, 4, 5, 6, 7, 8),
            global_registers=[9, 9],
        )
        clone = pickle.loads(pickle.dumps(context))
        assert clone == context
        assert clone.lookahead is default_lookahead
