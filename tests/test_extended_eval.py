"""The extended-workloads comparison driver, end to end at tiny scale."""

from repro.config import SystemConfig
from repro.eval.extended import EXTENDED_MODES, format_extended, run_extended
from repro.sim import PrefetchMode, SimEngine
from repro.workloads import registry


class TestExtendedComparison:
    def test_all_new_kernels_under_all_modes(self):
        engine = SimEngine()
        data = run_extended(scale="tiny", config=SystemConfig.scaled(), engine=engine)

        assert sorted(data.speedups) == sorted(registry.extended_names())
        for name, row in data.speedups.items():
            for mode in EXTENDED_MODES:
                assert row.get(mode.value) is not None, (name, mode)
            assert row[PrefetchMode.NONE.value] == 1.0
            # The manual PPU kernels must beat the no-prefetching baseline.
            assert row[PrefetchMode.MANUAL.value] > 1.0

        # Every derivable workload gets an extra manual point pinned to the
        # compiler-derived kernels, riding in the same engine plan.
        derivable = [
            name for name in registry.extended_names() if registry.get(name).derives_manual
        ]
        assert sorted(data.compiled_speedups) == sorted(derivable)
        for name, speedup in data.compiled_speedups.items():
            assert speedup is not None and speedup > 1.0, name

        # Dedup + cache statistics come back from the batch engine.
        stats = data.engine_stats
        assert stats is not None
        expected = len(registry.extended_names()) * len(EXTENDED_MODES) + len(derivable)
        assert stats.submitted == expected
        assert stats.executed == stats.unique - stats.memo_hits - stats.cache_hits
        assert "deduplicated" in stats.summary() and "cache hits" in stats.summary()

    def test_shared_engine_deduplicates_against_prior_runs(self):
        engine = SimEngine()
        run_extended(scale="tiny", engine=engine)
        again = run_extended(scale="tiny", engine=engine)
        assert again.engine_stats is not None
        assert again.engine_stats.executed == 0
        assert again.engine_stats.memo_hits == again.engine_stats.unique

    def test_format_reports_table_and_stats(self):
        data = run_extended(
            workloads=["spmv"], modes=[PrefetchMode.NONE, PrefetchMode.MANUAL], scale="tiny"
        )
        text = format_extended(data, modes=[PrefetchMode.NONE, PrefetchMode.MANUAL])
        assert "spmv" in text
        assert "geomean" in text
        assert "manual(comp)" in text
        assert "Batch engine:" in text
