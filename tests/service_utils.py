"""Harness utilities for the service test tier.

Provides:

* :class:`ServerThread` — a :class:`~repro.service.ReproServer` running on
  its own event loop in a background thread, so blocking
  :class:`~repro.service.ServiceClient` calls in the test body talk to a
  live daemon over loopback.
* Deterministic *instrumented workloads* for fault injection, registered
  under test-only names and cleaned out of the global registry afterwards
  (``tests/test_registry.py`` asserts its exact contents):

  - ``svcgate``  — blocks in ``_build_data`` while a hold-file exists, so
    tests control exactly when a chunk's simulation can proceed (no sleeps
    for *ordering*; the hold-file is the synchronisation primitive).
  - ``svccrashonce`` — SIGKILLs its worker process the first time a given
    seed is built (leaving a marker file), then behaves normally: the
    requeue path succeeds on the second attempt.
  - ``svccrashalways`` — SIGKILLs the worker on every attempt, driving the
    bounded-retry → labelled-failure path.

  The workloads coordinate with the test through files under the directory
  named by the ``REPRO_SVC_TEST_DIR`` environment variable, which the pool
  workers inherit when they fork.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from typing import Optional

from typing import TYPE_CHECKING

from repro.workloads.intsort import IntSortWorkload
from repro.workloads.registry import REGISTRY, register_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service import ReproServer

# NOTE: ``repro.service`` is imported lazily (inside ServerThread) on
# purpose: this module is also pulled in through the REPRO_WORKLOAD_PLUGINS
# hook (``svc_plugin``) *while* ``repro.service`` itself is still
# initialising inside a spawned daemon, and a top-level import would be
# circular there.

#: Environment variable naming the gate/marker directory for the
#: instrumented workloads.  Read inside the (forked) pool workers.
SVC_TEST_DIR_ENV = "REPRO_SVC_TEST_DIR"


def _test_dir() -> str:
    directory = os.environ.get(SVC_TEST_DIR_ENV)
    assert directory, f"{SVC_TEST_DIR_ENV} must be set before building test workloads"
    return directory


class SvcGateWorkload(IntSortWorkload):
    """Blocks workload construction while ``hold-<seed>`` exists."""

    name = "svcgate"

    def _build_data(self) -> None:
        hold = os.path.join(_test_dir(), f"hold-{self.seed}")
        while os.path.exists(hold):
            time.sleep(0.002)
        super()._build_data()


class SvcCrashOnceWorkload(IntSortWorkload):
    """Kills its worker process on the first build of each seed."""

    name = "svccrashonce"

    def _build_data(self) -> None:
        marker = os.path.join(_test_dir(), f"crashed-{self.seed}")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        super()._build_data()


class SvcCrashAlwaysWorkload(IntSortWorkload):
    """Kills its worker process on every build attempt."""

    name = "svccrashalways"

    def _build_data(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)


_TEST_WORKLOADS = (SvcGateWorkload, SvcCrashOnceWorkload, SvcCrashAlwaysWorkload)


@contextlib.contextmanager
def registered_test_workloads():
    """Register the instrumented workloads; always remove them on exit.

    Registration must happen before the daemon's pool forks its workers so
    the children inherit it.  Cleanup keeps the global registry exactly as
    the rest of the suite expects.
    """

    added = []
    for cls in _TEST_WORKLOADS:
        if cls.name not in REGISTRY:
            register_workload(scales=("tiny",))(cls)
            added.append(cls.name)
    try:
        yield
    finally:
        for name in added:
            REGISTRY._specs.pop(name, None)


class ServerThread:
    """A live daemon on a background event loop; ``with`` for lifecycle."""

    def __init__(self, **server_kwargs) -> None:
        server_kwargs.setdefault("trace_store", "off")
        server_kwargs.setdefault("workers", 2)
        self._kwargs = server_kwargs
        self.server: Optional[ReproServer] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def address(self) -> str:
        assert self.server is not None
        return self.server.address

    def _run(self) -> None:
        from repro.service import ReproServer

        async def serve() -> None:
            try:
                server = ReproServer(**self._kwargs)
                await server.start()
            except BaseException as error:  # surfaced in __enter__
                self._failure = error
                self._started.set()
                raise
            self.server = server
            self.loop = asyncio.get_running_loop()
            self._started.set()
            await server.wait_closed()

        try:
            asyncio.run(serve())
        except BaseException:
            pass

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(30), "daemon failed to start in time"
        if self._failure is not None:
            raise self._failure
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self.loop is not None and self.server is not None:
            with contextlib.suppress(RuntimeError):
                self.loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "daemon failed to drain and stop"

    def __exit__(self, *exc_info) -> None:
        self.stop()
