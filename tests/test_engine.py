"""Tests for the event-triggered prefetcher engine as a unit.

These drive the engine through a real memory hierarchy with a tiny synthetic
access stream (the Figure 4 loop: ``acc += C[B[A[x]]]``) so that every stage —
filter, observation queue, scheduler, PPUs, request queue, tags, EWMAs — is
exercised without needing a full workload.
"""

import pytest

from repro.config import SystemConfig
from repro.cpu.core import OutOfOrderCore
from repro.cpu.trace import TraceBuilder
from repro.memory.address_space import AddressSpace
from repro.memory.hierarchy import MemoryHierarchy
from repro.programmable.config_api import PrefetcherConfiguration
from repro.programmable.kernel import KernelBuilder
from repro.programmable.prefetcher import EventTriggeredPrefetcher
from repro.programmable.scheduler import RoundRobinPolicy


def build_figure4_setup(num_elements=4096, iterations=1500, *, blocking=False, num_ppus=12):
    import random

    rng = random.Random(3)
    config = SystemConfig.scaled().with_prefetcher(blocking_mode=blocking, num_ppus=num_ppus)
    space = AddressSpace()
    a = space.allocate_array("A", num_elements, values=[rng.randrange(num_elements) for _ in range(num_elements)])
    b = space.allocate_array("B", num_elements, values=[rng.randrange(num_elements) for _ in range(num_elements)])
    c = space.allocate_array("C", num_elements, values=[rng.randrange(1 << 20) for _ in range(num_elements)])

    pcfg = PrefetcherConfiguration()
    stream = pcfg.add_stream("a_stream", default_distance=8)
    base_a = pcfg.set_global("base_A", a.base_addr)
    base_b = pcfg.set_global("base_B", b.base_addr)
    base_c = pcfg.set_global("base_C", c.base_addr)

    k2 = KernelBuilder("on_B_fill")
    k2.prefetch(k2.add(k2.get_global(base_c), k2.shl(k2.get_data(), 3)))
    pcfg.add_kernel(k2.build())
    tag_b = pcfg.add_tag("fill_B", "on_B_fill", stream="a_stream")

    k1 = KernelBuilder("on_A_fill")
    k1.prefetch(k1.add(k1.get_global(base_b), k1.shl(k1.get_data(), 3)), tag=tag_b)
    pcfg.add_kernel(k1.build())
    tag_a = pcfg.add_tag("fill_A", "on_A_fill", stream="a_stream")

    k0 = KernelBuilder("on_A_load")
    base = k0.get_global(base_a)
    index = k0.shr(k0.sub(k0.get_vaddr(), base), 3)
    k0.prefetch(
        k0.add(base, k0.shl(k0.add(index, k0.get_lookahead(stream)), 3)), tag=tag_a
    )
    pcfg.add_kernel(k0.build())

    pcfg.add_range(
        "A", a.base_addr, a.end_addr, load_kernel="on_A_load", stream="a_stream",
        time_iterations=True, chain_start=True,
    )
    pcfg.add_range("C", c.base_addr, c.end_addr, stream="a_stream", chain_end=True)

    tb = TraceBuilder()
    for x in range(iterations):
        la = tb.load(a.addr_of(x % num_elements))
        lb = tb.load(b.addr_of(a[x % num_elements]), deps=[la])
        lc = tb.load(c.addr_of(b[a[x % num_elements]]), deps=[lb])
        tb.compute(4, deps=[lc])
    return config, space, pcfg, tb.build()


class TestEngineEndToEnd:
    def test_chain_produces_speedup_and_accurate_prefetches(self):
        config, space, pcfg, trace = build_figure4_setup()
        baseline_hier = MemoryHierarchy(config, space)
        baseline = OutOfOrderCore(config.core, baseline_hier).run(trace)

        hier = MemoryHierarchy(config, space)
        engine = EventTriggeredPrefetcher(config, pcfg)
        engine.attach(hier)
        stats = OutOfOrderCore(config.core, hier).run(trace)
        engine.finalize(stats.cycles)

        assert stats.cycles < baseline.cycles
        assert hier.l1.stats.demand_read_hit_rate > baseline_hier.l1.stats.demand_read_hit_rate
        engine_stats = engine.collect_stats()
        assert engine_stats["prefetches_issued"] > 0
        assert engine_stats["kernel_aborts"] == 0
        # Negligible extra memory traffic (the paper's Section 7.2 property).
        assert hier.dram.stats.total_accesses <= 1.1 * baseline_hier.dram.stats.total_accesses

    def test_observations_and_events_accounted(self):
        config, space, pcfg, trace = build_figure4_setup(iterations=400)
        hier = MemoryHierarchy(config, space)
        engine = EventTriggeredPrefetcher(config, pcfg)
        engine.attach(hier)
        stats = OutOfOrderCore(config.core, hier).run(trace)
        engine.finalize(stats.cycles)
        collected = engine.collect_stats()
        assert collected["loads_snooped"] == stats.loads
        assert collected["observations_created"] > 0
        assert collected["events_executed"] > 0
        assert len(collected["per_ppu"]) == config.prefetcher.num_ppus
        assert len(collected["activity_factors"]) == config.prefetcher.num_ppus

    def test_lookahead_adapts_from_default(self):
        config, space, pcfg, trace = build_figure4_setup(iterations=1200)
        hier = MemoryHierarchy(config, space)
        engine = EventTriggeredPrefetcher(config, pcfg)
        engine.attach(hier)
        stats = OutOfOrderCore(config.core, hier).run(trace)
        engine.finalize(stats.cycles)
        assert engine.lookahead_distance("a_stream") != 8 or engine.collect_stats()["lookahead"]

    def test_blocking_mode_is_slower_for_chained_pattern(self):
        config, space, pcfg, trace = build_figure4_setup(iterations=1000)
        event_hier = MemoryHierarchy(config, space)
        event_engine = EventTriggeredPrefetcher(config, pcfg)
        event_engine.attach(event_hier)
        event_stats = OutOfOrderCore(config.core, event_hier).run(trace)

        blocking_config, _, _, _ = build_figure4_setup(iterations=1, blocking=True)
        blocked_hier = MemoryHierarchy(blocking_config, space)
        blocked_engine = EventTriggeredPrefetcher(blocking_config, pcfg)
        blocked_engine.attach(blocked_hier)
        blocked_stats = OutOfOrderCore(blocking_config.core, blocked_hier).run(trace)

        assert event_stats.cycles < blocked_stats.cycles

    def test_fewer_ppus_never_faster(self):
        config12, space, pcfg, trace = build_figure4_setup(iterations=800)
        hier12 = MemoryHierarchy(config12, space)
        engine12 = EventTriggeredPrefetcher(config12, pcfg)
        engine12.attach(hier12)
        cycles12 = OutOfOrderCore(config12.core, hier12).run(trace).cycles

        config1, _, _, _ = build_figure4_setup(iterations=1, num_ppus=1)
        hier1 = MemoryHierarchy(config1, space)
        engine1 = EventTriggeredPrefetcher(config1, pcfg)
        engine1.attach(hier1)
        cycles1 = OutOfOrderCore(config1.core, hier1).run(trace).cycles
        assert cycles12 <= cycles1 * 1.05

    def test_lowest_id_policy_concentrates_work(self):
        config, space, pcfg, trace = build_figure4_setup(iterations=600)
        hier = MemoryHierarchy(config, space)
        engine = EventTriggeredPrefetcher(config, pcfg)
        engine.attach(hier)
        stats = OutOfOrderCore(config.core, hier).run(trace)
        engine.finalize(stats.cycles)
        factors = engine.collect_stats()["activity_factors"]
        assert factors[0] >= factors[-1]

    def test_round_robin_policy_spreads_work(self):
        config, space, pcfg, trace = build_figure4_setup(iterations=600)
        hier = MemoryHierarchy(config, space)
        engine = EventTriggeredPrefetcher(config, pcfg, policy=RoundRobinPolicy())
        engine.attach(hier)
        stats = OutOfOrderCore(config.core, hier).run(trace)
        engine.finalize(stats.cycles)
        per_ppu = engine.collect_stats()["per_ppu"]
        events = [p["events_executed"] for p in per_ppu]
        assert min(events) > 0

    def test_detach_stops_observations(self):
        config, space, pcfg, _ = build_figure4_setup(iterations=10)
        hier = MemoryHierarchy(config, space)
        engine = EventTriggeredPrefetcher(config, pcfg)
        engine.attach(hier)
        engine.detach()
        hier.demand_access(space.regions[0].base, 0.0)
        assert engine.stats.loads_snooped == 0
