"""Tests for the programmable prefetcher's building blocks.

Covers the EWMA calculators, droppable queues, global registers, address
filter, PPU bookkeeping, scheduling policies and the configuration API.
"""

import pytest

from repro.errors import ConfigurationError
from repro.programmable.config_api import PrefetcherConfiguration
from repro.programmable.ewma import EWMA, MAX_LOOKAHEAD, MIN_LOOKAHEAD, LookaheadCalculator
from repro.programmable.events import Observation, ObservationKind, PrefetchRequest
from repro.programmable.filter import AddressFilter
from repro.programmable.kernel import KernelBuilder
from repro.programmable.ppu import PPU
from repro.programmable.queues import ObservationQueue, PrefetchRequestQueue
from repro.programmable.registers import GlobalRegisterFile
from repro.programmable.scheduler import LowestFreeIdPolicy, RoundRobinPolicy


def simple_kernel(name="k"):
    builder = KernelBuilder(name)
    builder.prefetch(builder.get_vaddr())
    return builder.build()


class TestEWMA:
    def test_first_sample_sets_value(self):
        ewma = EWMA(alpha=0.5)
        assert ewma.update(10.0) == 10.0

    def test_smoothing(self):
        ewma = EWMA(alpha=0.5)
        ewma.update(10.0)
        assert ewma.update(20.0) == pytest.approx(15.0)

    def test_negative_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            EWMA().update(-1.0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            EWMA(alpha=0.0)


class TestLookaheadCalculator:
    def test_default_distance_before_samples(self):
        calc = LookaheadCalculator(default_distance=6)
        assert calc.lookahead() == 6

    def test_lookahead_ratio(self):
        calc = LookaheadCalculator(iteration_window=1)
        for i in range(20):
            calc.observe_iteration(i * 50.0)
        calc.observe_chain(0.0, 400.0)
        # chain 400 / iteration 50 → 8 (+1 margin)
        assert 8 <= calc.lookahead() <= 10

    def test_lookahead_clamped(self):
        calc = LookaheadCalculator(iteration_window=1)
        calc.observe_iteration(0.0)
        calc.observe_iteration(1.0)
        calc.observe_chain(0.0, 1e9)
        assert calc.lookahead() == MAX_LOOKAHEAD
        calc2 = LookaheadCalculator(iteration_window=1)
        calc2.observe_iteration(0.0)
        calc2.observe_iteration(1000.0)
        calc2.observe_chain(0.0, 0.0)
        assert calc2.lookahead() >= MIN_LOOKAHEAD

    def test_bursty_observations_smoothed(self):
        calc = LookaheadCalculator(iteration_window=4)
        # 4 observations almost together, then a long gap, repeatedly: the
        # averaged iteration time should be ≈ gap / 4, not ≈ 0.
        time = 0.0
        for _ in range(8):
            for burst in range(4):
                calc.observe_iteration(time + burst)
            time += 400.0
        assert calc.iteration_time.value == pytest.approx(100.0, rel=0.3)

    def test_reset(self):
        calc = LookaheadCalculator(iteration_window=1)
        calc.observe_iteration(0.0)
        calc.observe_iteration(10.0)
        calc.observe_chain(0.0, 100.0)
        calc.reset()
        assert calc.lookahead() == calc.default_distance


class TestQueues:
    def _observation(self, addr=0):
        return Observation(
            kind=ObservationKind.LOAD,
            addr=addr,
            time=0.0,
            kernel_name="k",
            line_base=0,
        )

    def test_fifo_order(self):
        queue = ObservationQueue(4)
        for i in range(3):
            queue.push(self._observation(i))
        assert queue.pop().addr == 0
        assert queue.pop().addr == 1

    def test_oldest_dropped_on_overflow(self):
        queue = ObservationQueue(2)
        for i in range(3):
            queue.push(self._observation(i))
        assert queue.dropped == 1
        assert queue.pop().addr == 1

    def test_pop_empty_returns_none(self):
        assert ObservationQueue(2).pop() is None

    def test_request_queue_capacity(self):
        queue = PrefetchRequestQueue(3)
        for i in range(5):
            queue.push(PrefetchRequest(addr=i, tag=-1, issue_time=0.0))
        assert len(queue) == 3
        assert queue.dropped == 2
        assert queue.pushed == 5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ObservationQueue(0)


class TestGlobalRegisters:
    def test_define_and_read(self):
        regs = GlobalRegisterFile(4)
        index = regs.define("base_A", 0x1234)
        assert regs.read(index) == 0x1234
        assert regs.index_of("base_A") == index

    def test_redefine_updates_value(self):
        regs = GlobalRegisterFile(4)
        index = regs.define("x", 1)
        assert regs.define("x", 2) == index
        assert regs.read(index) == 2

    def test_capacity_enforced(self):
        regs = GlobalRegisterFile(2)
        regs.define("a", 1)
        regs.define("b", 2)
        with pytest.raises(ConfigurationError):
            regs.define("c", 3)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            GlobalRegisterFile(2).index_of("missing")

    def test_snapshot_is_copy(self):
        regs = GlobalRegisterFile(2)
        regs.define("a", 5)
        snapshot = regs.snapshot()
        snapshot[0] = 99
        assert regs.read(0) == 5


class TestConfigurationAPI:
    def test_round_trip(self):
        config = PrefetcherConfiguration()
        config.add_kernel(simple_kernel("on_load"))
        config.add_stream("s", default_distance=8)
        config.set_global("base", 0x1000)
        tag = config.add_tag("fill", "on_load", stream="s")
        config.add_range("A", 0x1000, 0x2000, load_kernel="on_load", stream="s")
        config.validate()
        assert config.tag(tag).kernel == "on_load"
        assert config.global_index("base") == 0
        assert config.stream_index("s") == 0
        assert config.config_instruction_count() > 0
        assert config.code_footprint_bytes() > 0

    def test_duplicate_kernel_rejected(self):
        config = PrefetcherConfiguration()
        config.add_kernel(simple_kernel("k"))
        with pytest.raises(ConfigurationError):
            config.add_kernel(simple_kernel("k"))

    def test_unknown_kernel_reference_rejected(self):
        config = PrefetcherConfiguration()
        config.add_range("A", 0, 64, load_kernel="missing")
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_unknown_stream_reference_rejected(self):
        config = PrefetcherConfiguration()
        config.add_kernel(simple_kernel("k"))
        config.add_range("A", 0, 64, load_kernel="k", stream="ghost")
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_invalid_range_rejected(self):
        config = PrefetcherConfiguration()
        with pytest.raises(ConfigurationError):
            config.add_range("A", 100, 100)

    def test_tag_ids_stable_by_name(self):
        config = PrefetcherConfiguration()
        config.add_kernel(simple_kernel("k"))
        first = config.add_tag("t", "k")
        assert config.add_tag("t", "k") == first
        assert config.tag_by_name("t") == first


class TestAddressFilter:
    def _config(self):
        config = PrefetcherConfiguration()
        config.add_kernel(simple_kernel("on_load"))
        config.add_kernel(simple_kernel("on_fill"))
        config.add_stream("s")
        config.add_range("A", 0x1000, 0x2000, load_kernel="on_load", stream="s", time_iterations=True)
        config.add_range("B", 0x1800, 0x3000, prefetch_kernel="on_fill")
        config.validate()
        return config

    def test_load_matching(self):
        filt = AddressFilter(self._config(), max_entries=16)
        assert [r.name for r in filt.match_load(0x1100)] == ["A"]
        assert filt.match_load(0x4000) == []

    def test_overlapping_ranges_both_match(self):
        filt = AddressFilter(self._config(), max_entries=16)
        assert len(filt.match_load(0x1900)) == 1  # B has no load kernel
        assert len(filt.match_prefetch(0x1900)) == 1

    def test_prefetch_matching(self):
        filt = AddressFilter(self._config(), max_entries=16)
        assert [r.name for r in filt.match_prefetch(0x2800)] == ["B"]

    def test_capacity_enforced(self):
        with pytest.raises(ConfigurationError):
            AddressFilter(self._config(), max_entries=1)

    def test_stats_recorded(self):
        filt = AddressFilter(self._config(), max_entries=16)
        filt.match_load(0x1100)
        filt.match_load(0x9000)
        assert filt.stats.load_snoops == 2
        assert filt.stats.load_matches == 1


class TestPPUAndScheduling:
    def test_ppu_busy_accounting(self):
        ppu = PPU(0)
        finish = ppu.assign(100.0, ppu_instructions=10, cycle_ratio=3.2)
        assert finish == pytest.approx(100.0 + 12 * 3.2)
        assert not ppu.is_free(finish - 1)
        assert ppu.is_free(finish)
        assert ppu.activity_factor(finish) > 0

    def test_activity_factor_clamped(self):
        ppu = PPU(0)
        ppu.stats.busy_cycles = 500.0
        assert ppu.activity_factor(100.0) == 1.0
        assert PPU(1).activity_factor(0.0) == 0.0

    def test_lowest_free_id_policy(self):
        ppus = [PPU(0), PPU(1), PPU(2)]
        ppus[0].busy_until = 100.0
        policy = LowestFreeIdPolicy()
        assert policy.select(ppus, 50.0).ppu_id == 1
        assert policy.select(ppus, 200.0).ppu_id == 0

    def test_lowest_free_id_returns_none_when_all_busy(self):
        ppus = [PPU(0)]
        ppus[0].busy_until = 10.0
        assert LowestFreeIdPolicy().select(ppus, 5.0) is None

    def test_round_robin_spreads_work(self):
        ppus = [PPU(i) for i in range(3)]
        policy = RoundRobinPolicy()
        picks = [policy.select(ppus, 0.0).ppu_id for _ in range(3)]
        assert picks == [0, 1, 2]
