"""Tests for the PPU kernel ISA, builder and interpreter."""

import pytest

from repro.errors import KernelError
from repro.programmable.interpreter import (
    MAX_DYNAMIC_INSTRUCTIONS,
    KernelContext,
    execute_kernel,
)
from repro.programmable.kernel import (
    NUM_LOCAL_REGISTERS,
    KernelBuilder,
    Opcode,
    total_code_bytes,
)


def context(vaddr=0x1000, line=None, globals_=(), lookahead=lambda s: 4):
    line_base = vaddr - (vaddr % 64)
    return KernelContext(
        vaddr=vaddr,
        line_base=line_base,
        line_words=line,
        global_registers=list(globals_),
        lookahead=lookahead,
    )


class TestBuilder:
    def test_auto_halt_appended(self):
        k = KernelBuilder("k")
        k.imm(1)
        program = k.build()
        assert program.instructions[-1].opcode == Opcode.HALT

    def test_register_exhaustion_raises(self):
        k = KernelBuilder("k")
        with pytest.raises(KernelError):
            for _ in range(NUM_LOCAL_REGISTERS + 1):
                k.imm(0)

    def test_register_reuse_via_dst(self):
        k = KernelBuilder("k")
        counter = k.imm(0)
        k.add(counter, 1, dst=counter)
        program = k.build()
        # Only one register was allocated.
        assert max(i.dst for i in program.instructions) == 0

    def test_undefined_label_raises(self):
        k = KernelBuilder("k")
        k.jump("nowhere")
        with pytest.raises(KernelError):
            k.build()

    def test_duplicate_label_raises(self):
        k = KernelBuilder("k")
        k.label("here")
        with pytest.raises(KernelError):
            k.label("here")

    def test_code_size_accounting(self):
        k = KernelBuilder("k")
        k.prefetch(k.get_vaddr())
        program = k.build()
        assert program.size_bytes == len(program) * 4
        assert total_code_bytes([program, program]) == 2 * program.size_bytes

    def test_empty_kernel_rejected(self):
        from repro.programmable.kernel import KernelProgram

        with pytest.raises(KernelError):
            KernelProgram("empty", ()).validate()


class TestInterpreterArithmetic:
    def test_figure4_style_kernel(self):
        # on_A_prefetch: fetch = base_B + data * 8
        k = KernelBuilder("on_A_prefetch")
        data = k.get_data()
        addr = k.add(k.get_global(0), k.shl(data, 3))
        k.prefetch(addr)
        program = k.build()
        line = [11, 22, 33, 44, 55, 66, 77, 88]
        ctx = context(vaddr=0x1000 + 2 * 8, line=line, globals_=[0x8000])
        result = execute_kernel(program, ctx)
        assert result.prefetches == [(0x8000 + 33 * 8, -1)]
        assert not result.aborted

    def test_lookahead_used_in_address(self):
        k = KernelBuilder("on_load")
        base = k.get_global(0)
        index = k.shr(k.sub(k.get_vaddr(), base), 3)
        target = k.add(base, k.shl(k.add(index, k.get_lookahead(0)), 3))
        k.prefetch(target, tag=3)
        program = k.build()
        ctx = context(vaddr=0x8000 + 5 * 8, globals_=[0x8000], lookahead=lambda s: 7)
        result = execute_kernel(program, ctx)
        assert result.prefetches == [(0x8000 + 12 * 8, 3)]

    def test_masking_and_multiplication(self):
        k = KernelBuilder("hash")
        hashed = k.and_(k.mul(k.get_data(), 2654435761), 0xFFF)
        k.prefetch(k.add(k.get_global(0), k.shl(hashed, 4)))
        ctx = context(vaddr=0x1000, line=[99] * 8, globals_=[0x4000])
        result = execute_kernel(k.build(), ctx)
        expected = 0x4000 + ((99 * 2654435761) & 0xFFF) * 16
        assert result.prefetch_addresses == [expected]

    def test_branching_loop_generates_bounded_prefetches(self):
        k = KernelBuilder("walk")
        cursor = k.get_vaddr()
        count = k.imm(0)
        k.label("top")
        k.prefetch(cursor)
        k.add(cursor, 64, dst=cursor)
        k.add(count, 1, dst=count)
        k.branch_lt(count, k.imm(4), "top")
        result = execute_kernel(k.build(), context(vaddr=0x2000))
        assert len(result.prefetches) == 4
        assert result.prefetch_addresses == [0x2000, 0x2040, 0x2080, 0x20C0]

    def test_line_word_access(self):
        k = KernelBuilder("line")
        k.prefetch(k.line_word(5))
        result = execute_kernel(k.build(), context(line=[0, 1, 2, 3, 4, 500, 6, 7]))
        assert result.prefetch_addresses == [500]


class TestInterpreterFaults:
    def test_get_data_without_line_aborts(self):
        k = KernelBuilder("k")
        k.prefetch(k.get_data())
        result = execute_kernel(k.build(), context(line=None))
        assert result.aborted
        assert result.prefetches == []

    def test_line_word_out_of_range_aborts(self):
        k = KernelBuilder("k")
        k.prefetch(k.line_word(12))
        result = execute_kernel(k.build(), context(line=[0] * 8))
        assert result.aborted

    def test_global_out_of_range_aborts(self):
        k = KernelBuilder("k")
        k.prefetch(k.get_global(9))
        result = execute_kernel(k.build(), context(globals_=[1, 2]))
        assert result.aborted

    def test_runaway_loop_terminated(self):
        k = KernelBuilder("spin")
        k.label("top")
        k.jump("top")
        result = execute_kernel(k.build(), context())
        assert result.aborted
        assert result.instructions_executed >= MAX_DYNAMIC_INSTRUCTIONS

    def test_instruction_count_reported(self):
        k = KernelBuilder("count")
        k.prefetch(k.add(k.imm(1), k.imm(2)))
        result = execute_kernel(k.build(), context())
        # LI, LI, ADD, PREFETCH, HALT
        assert result.instructions_executed == 5
