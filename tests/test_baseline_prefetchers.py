"""Tests for the stride and GHB baseline prefetchers."""

import pytest

from repro.config import GHBPrefetcherConfig, StridePrefetcherConfig, SystemConfig
from repro.memory.address_space import AddressSpace
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetch.ghb import GHBPrefetcher
from repro.prefetch.none import NullPrefetcher
from repro.prefetch.stride import StridePrefetcher


class TestStridePrefetcher:
    def test_learns_constant_stride(self):
        prefetcher = StridePrefetcher(StridePrefetcherConfig(confidence_threshold=2, degree=4))
        base = 0x10000
        candidates = []
        for i in range(6):
            candidates = prefetcher.train(base + i * 64, float(i), "dram")
        assert candidates, "a stable stride should produce prefetch candidates"
        assert all(addr > base + 5 * 64 for addr in candidates)
        assert len(candidates) <= 4

    def test_random_addresses_produce_no_prefetches(self):
        prefetcher = StridePrefetcher()
        import random

        rng = random.Random(7)
        produced = []
        for i in range(200):
            produced += prefetcher.train(0x10000 + rng.randrange(1 << 20) * 8, float(i), "dram")
        assert len(produced) < 10

    def test_candidates_are_line_aligned_and_unique(self):
        prefetcher = StridePrefetcher(StridePrefetcherConfig(confidence_threshold=1, degree=8))
        for i in range(4):
            candidates = prefetcher.train(0x20000 + i * 8, float(i), "l2")
        assert all(addr % 64 == 0 for addr in candidates)
        assert len(candidates) == len(set(candidates))

    def test_table_capacity_evicts_old_streams(self):
        prefetcher = StridePrefetcher(StridePrefetcherConfig(table_entries=2))
        prefetcher.train(0x0001_0000, 0.0, "dram")
        prefetcher.train(0x0002_0000, 0.0, "dram")
        prefetcher.train(0x0003_0000, 0.0, "dram")
        assert len(prefetcher._table) <= 2

    def test_attach_issues_prefetches_into_hierarchy(self):
        config = SystemConfig.scaled()
        space = AddressSpace()
        array = space.allocate_array("a", 8192, values=range(8192))
        hierarchy = MemoryHierarchy(config, space)
        prefetcher = StridePrefetcher(config.stride)
        prefetcher.attach(hierarchy)
        time = 0.0
        for i in range(64):
            result = hierarchy.demand_access(array.addr_of(i * 8), time)
            time = result.completion_time + 1
        assert prefetcher.stats.prefetches_issued > 0
        assert hierarchy.l1.stats.prefetch_requests > 0


class TestGHBPrefetcher:
    def test_repeating_sequence_predicted(self):
        prefetcher = GHBPrefetcher(GHBPrefetcherConfig.regular())
        sequence = [0x1000, 0x5000, 0x9000, 0xD000]
        for _ in range(3):
            for addr in sequence:
                prefetcher.train(addr, 0.0, "dram")
        candidates = prefetcher.train(sequence[0], 0.0, "dram")
        assert 0x5000 in candidates

    def test_hits_do_not_train(self):
        prefetcher = GHBPrefetcher()
        for _ in range(3):
            for addr in (0x1000, 0x5000):
                prefetcher.train(addr, 0.0, "l1")
        assert prefetcher.train(0x1000, 0.0, "l1") == []

    def test_non_repeating_stream_not_predicted(self):
        prefetcher = GHBPrefetcher()
        produced = []
        for i in range(500):
            produced += prefetcher.train(0x10000 + i * 4096, 0.0, "dram")
        assert produced == []

    def test_history_capacity_limits_regular_config(self):
        small = GHBPrefetcher(GHBPrefetcherConfig(index_entries=16, history_entries=16))
        sequence = [0x1000 + i * 64 for i in range(64)]
        for addr in sequence:
            small.train(addr, 0.0, "dram")
        # The first addresses have been pushed out of the 16-entry history.
        assert small.train(sequence[0], 0.0, "dram") == []

    def test_large_preset_has_more_state(self):
        assert GHBPrefetcherConfig.large().history_entries > GHBPrefetcherConfig.regular().history_entries

    def test_width_limits_successors(self):
        prefetcher = GHBPrefetcher(GHBPrefetcherConfig(width=2, depth=4))
        sequence = [0x1000, 0x2000, 0x3000, 0x4000, 0x5000, 0x6000]
        for _ in range(2):
            for addr in sequence:
                prefetcher.train(addr, 0.0, "dram")
        candidates = prefetcher.train(sequence[0], 0.0, "dram")
        assert len(candidates) <= 2 * 4


class TestNullPrefetcher:
    def test_never_prefetches(self):
        prefetcher = NullPrefetcher()
        assert prefetcher.train(0x1000, 0.0, "dram") == []

    def test_attach_detach(self):
        config = SystemConfig.scaled()
        space = AddressSpace()
        space.allocate_array("a", 64)
        hierarchy = MemoryHierarchy(config, space)
        prefetcher = NullPrefetcher()
        prefetcher.attach(hierarchy)
        hierarchy.demand_access(space.regions[0].base, 0.0)
        assert prefetcher.stats.observations == 1
        prefetcher.detach()
        hierarchy.demand_access(space.regions[0].base + 8, 500.0)
        assert prefetcher.stats.observations == 1
