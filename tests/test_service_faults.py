"""Fault-injection tests: worker crashes, client disconnects, SIGTERM drain.

All synchronisation is via protocol events, marker files, and bounded
polling of *state the daemon reports* — never via sleeps that assume an
ordering.
"""

from __future__ import annotations

import os
import signal
import subprocess
import time

import pytest

from repro.config import SystemConfig
from repro.service import ServiceClient, spawn_local_daemon
from repro.service.protocol import request_to_wire
from repro.sim.engine import SimRequest

from service_utils import SVC_TEST_DIR_ENV, ServerThread, registered_test_workloads


@pytest.fixture
def svc_dir(tmp_path, monkeypatch):
    directory = tmp_path / "svc"
    directory.mkdir()
    monkeypatch.setenv(SVC_TEST_DIR_ENV, str(directory))
    return directory


def request_for(workload: str, seed: int) -> SimRequest:
    return SimRequest(
        workload=workload,
        mode="none",
        scale="tiny",
        seed=seed,
        config=SystemConfig.scaled(),
    )


def read_until(client: ServiceClient, kind: str, sid=None) -> dict:
    while True:
        event = client.read_event()
        if event.get("type") == kind and (sid is None or event.get("id") == sid):
            return event


def wait_for_counter(address: str, key: str, value: int, timeout: float = 30.0) -> dict:
    """Poll server stats until ``stats[key] >= value`` (bounded)."""

    deadline = time.monotonic() + timeout
    with ServiceClient(address) as probe:
        while True:
            counters = probe.server_stats()
            if counters.get(key, 0) >= value:
                return counters
            assert time.monotonic() < deadline, (
                f"server counter {key!r} never reached {value}: {counters}"
            )
            time.sleep(0.01)


# ------------------------------------------------------------ worker crash


def test_worker_crash_requeues_chunk_and_completes(svc_dir):
    """A SIGKILLed worker's chunk is requeued and succeeds on retry."""

    with registered_test_workloads():
        with ServerThread(workers=1) as daemon:
            with ServiceClient(daemon.address, timeout=120.0) as client:
                sid = client.submit_nowait([request_for("svccrashonce", seed=301)])
                read_until(client, "accepted", sid)
                requeued = read_until(client, "chunk-requeued", sid)
                assert requeued["attempt"] == 1
                done = read_until(client, "done", sid)
            counters = wait_for_counter(daemon.address, "crashes", 1)

    (outcome,) = done["outcomes"]
    assert outcome["status"] == "ok", outcome
    assert outcome["result"]["workload"] == "svccrashonce"
    assert counters["crashes"] >= 1
    assert counters["requeued"] >= 1
    assert counters["executed"] == 1
    # The crash marker proves the first attempt really died mid-build.
    assert os.path.exists(svc_dir / "crashed-301")


def test_persistent_crash_fails_cleanly_and_pool_recovers(svc_dir):
    """Attempts exhausted → labelled failure; the daemon stays healthy."""

    with registered_test_workloads():
        with ServerThread(workers=1, max_attempts=2) as daemon:
            with ServiceClient(daemon.address, timeout=120.0) as client:
                sid = client.submit_nowait([request_for("svccrashalways", seed=302)])
                read_until(client, "accepted", sid)
                done = read_until(client, "done", sid)

                (outcome,) = done["outcomes"]
                assert outcome["status"] == "failed"
                assert "worker crashed" in outcome["failure"]
                assert done["stats"]["failed"] == 1

                # Failures are not memoised and the pool was rebuilt: a
                # healthy submission on the same connection still works.
                sid2 = client.submit_nowait([request_for("svccrashonce", seed=303)])
                read_until(client, "accepted", sid2)
                done2 = read_until(client, "done", sid2)
                (outcome2,) = done2["outcomes"]
                assert outcome2["status"] == "ok"

            counters = wait_for_counter(daemon.address, "failed", 1)
    assert counters["failed"] == 1
    assert any("worker crashed" in label for label in counters["failures"])


# ------------------------------------------------------- client disconnect


def test_disconnect_cancels_unique_work_but_not_shared(svc_dir):
    """Disconnect drops the client's queued unique work; joined work runs on."""

    shared = request_for("svcgate", seed=311)
    unique = request_for("svcgate", seed=312)
    hold = svc_dir / "hold-311"
    hold.touch()
    with registered_test_workloads():
        with ServerThread(workers=1) as daemon:
            leaver = ServiceClient(daemon.address, timeout=120.0)
            stayer = ServiceClient(daemon.address, timeout=120.0)

            # Two workload groups → two chunks; the shared one is gated and
            # occupies the only worker, the unique one sits in the queue.
            sid_l = leaver.submit_nowait([shared, unique])
            accepted = read_until(leaver, "accepted", sid_l)
            assert accepted["chunks"] == 2
            read_until(leaver, "chunk-started", sid_l)

            sid_s = stayer.submit_nowait([shared])
            accepted_s = read_until(stayer, "accepted", sid_s)
            assert accepted_s["joined"] == 1

            # The leaver vanishes mid-stream.  Its unique queued request
            # must be cancelled; the shared in-flight one survives for the
            # stayer.
            leaver.close()
            counters = wait_for_counter(daemon.address, "cancelled", 1)
            assert counters["cancelled"] == 1

            hold.unlink()
            done = read_until(stayer, "done", sid_s)
            (outcome,) = done["outcomes"]
            assert outcome["status"] == "ok"

            final = wait_for_counter(daemon.address, "executed", 1)
            stayer.close()

    # Only the shared digest executed; the orphaned unique one never ran.
    assert final["executed"] == 1
    assert final["cancelled"] == 1


# ------------------------------------------------------------ SIGTERM drain


def test_sigterm_drains_in_flight_work_before_exit(tmp_path):
    """SIGTERM mid-run: the pending submission completes, then the daemon exits."""

    with spawn_local_daemon(workers=1, trace_store="off") as (process, address):
        client = ServiceClient(address, timeout=300.0)
        requests = [
            SimRequest(workload="intsort", mode=m, scale="tiny", seed=42,
                       config=SystemConfig.scaled())
            for m in ("none", "stride")
        ]
        sid = client.submit_nowait(requests)
        read_until(client, "accepted", sid)
        read_until(client, "chunk-started", sid)

        # Work is in flight *now*; ask for termination.
        process.send_signal(signal.SIGTERM)

        done = read_until(client, "done", sid)
        assert [o["status"] for o in done["outcomes"]] == ["ok", "ok"]

        # After the drain the daemon closes connections and exits cleanly.
        with pytest.raises(Exception):
            while True:
                client.read_event()
        client.close()
        assert process.wait(timeout=60) == 0


def test_draining_daemon_rejects_new_submissions(svc_dir):
    """Submissions arriving during a drain get an error, not silence."""

    hold = svc_dir / "hold-321"
    hold.touch()
    with registered_test_workloads():
        daemon = ServerThread(workers=1)
        with daemon:
            client = ServiceClient(daemon.address, timeout=120.0)
            sid = client.submit_nowait([request_for("svcgate", seed=321)])
            read_until(client, "accepted", sid)
            read_until(client, "chunk-started", sid)

            # Connect the late client *before* the drain: once draining
            # begins the listener is closed, so fresh connections are
            # refused outright — only already-connected clients can still
            # submit (and must be told no).
            late = ServiceClient(daemon.address, timeout=120.0)

            # Start the drain while the gated chunk runs, from a second
            # connection (the drain leaves existing connections alive until
            # their work completes).
            drainer = ServiceClient(daemon.address, timeout=120.0)
            drainer.shutdown_server()

            late_sid = late.submit_nowait([request_for("svcgate", seed=322)])
            error = read_until(late, "error", late_sid)
            assert "draining" in error["message"]
            late.close()
            drainer.close()

            hold.unlink()
            done = read_until(client, "done", sid)
            (outcome,) = done["outcomes"]
            assert outcome["status"] == "ok"
            client.close()
