"""Concurrency stress tests for the on-disk caches' atomic writes.

The historical implementation named its temp files ``<entry>.tmp.<pid>`` —
unique across processes but *not* within one.  Two same-process writers of
one digest (a service daemon's completion handler racing a submission
handler, or two pool callbacks) would interleave bytes in a shared temp
file and race the rename; the loser raised ``FileNotFoundError`` and a
corrupt interleaving could win.  These tests hammer a single digest from
many threads and many processes and assert that every read parses and no
temp litter survives, plus pin the dead-writer sweep semantics.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.atomicio import atomic_write_bytes, sweep_dead_writer_tmp_files, writer_pid
from repro.config import SystemConfig
from repro.sim.engine import UNAVAILABLE, ResultCache, SimRequest
from repro.sim.results import SimulationResult
from repro.trace_store import TraceStore

HAMMER_ITERATIONS = 40
WRITERS = 8


def make_request(seed: int = 1) -> SimRequest:
    return SimRequest(
        workload="intsort", mode="none", scale="tiny", seed=seed,
        config=SystemConfig.scaled(),
    )


def make_result(cycles: float) -> SimulationResult:
    return SimulationResult(
        workload="intsort", mode="none", cycles=cycles, instructions=1000
    )


def tmp_litter(directory: Path) -> list[Path]:
    return sorted(directory.glob("*.tmp.*"))


# ------------------------------------------------------- same-process races


def test_result_cache_same_digest_hammered_from_threads(tmp_path):
    """8 threads × 40 writes of one digest: no exceptions, reads always parse.

    Under the old per-pid temp naming every thread shared one temp path, so
    this test raced ``os.replace`` into ``FileNotFoundError`` and could
    publish interleaved bytes.
    """

    cache = ResultCache(tmp_path)
    request = make_request()
    errors: list[BaseException] = []
    valid_cycles = {float(t * 1000 + i) for t in range(WRITERS) for i in range(HAMMER_ITERATIONS)}

    def hammer(thread_index: int) -> None:
        try:
            for i in range(HAMMER_ITERATIONS):
                cache.put(request, make_result(float(thread_index * 1000 + i)))
                found = cache.get(request.digest)
                assert found is not None and found is not UNAVAILABLE
                assert found.cycles in valid_cycles
        except BaseException as error:  # pragma: no cover - the failure path
            errors.append(error)

    threads = [
        threading.Thread(target=hammer, args=(index,)) for index in range(WRITERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == [], errors
    final = cache.get(request.digest)
    assert final is not None and final.cycles in valid_cycles
    assert tmp_litter(tmp_path) == []


def _hammer_cache_process(args) -> str:
    directory, writer_index = args
    cache = ResultCache(directory)
    request = make_request()
    for i in range(HAMMER_ITERATIONS):
        cache.put(request, make_result(float(writer_index * 1000 + i)))
        found = cache.get(request.digest)
        assert found is not None
    return "ok"


def test_result_cache_same_digest_hammered_from_processes(tmp_path):
    """8 processes × 40 writes of one digest: atomic last-write-wins."""

    with multiprocessing.get_context("fork").Pool(WRITERS) as pool:
        outcomes = pool.map(
            _hammer_cache_process, [(str(tmp_path), index) for index in range(WRITERS)]
        )
    assert outcomes == ["ok"] * WRITERS

    cache = ResultCache(tmp_path)
    final = cache.get(make_request().digest)
    assert final is not None
    assert final.cycles in {
        float(w * 1000 + i) for w in range(WRITERS) for i in range(HAMMER_ITERATIONS)
    }
    assert tmp_litter(tmp_path) == []
    # The published file is well-formed JSON, not an interleaving.
    (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
    json.loads(entry.read_text())


def _hammer_store_process(args) -> str:
    directory, writer_index = args
    store = TraceStore(directory)
    payload = bytes([writer_index]) * 4096
    for _ in range(HAMMER_ITERATIONS):
        store.put_bytes("deadbeef" * 8, payload)
        read = store.get_bytes("deadbeef" * 8)
        assert read is not None
        # Reads must be a complete payload from *some* writer, never a mix.
        assert len(set(read)) == 1 and len(read) == 4096
    return "ok"


def test_trace_store_same_digest_hammered_from_processes(tmp_path):
    with multiprocessing.get_context("fork").Pool(WRITERS) as pool:
        outcomes = pool.map(
            _hammer_store_process, [(str(tmp_path), index) for index in range(WRITERS)]
        )
    assert outcomes == ["ok"] * WRITERS
    store = TraceStore(tmp_path)
    final = store.get_bytes("deadbeef" * 8)
    assert final is not None and len(set(final)) == 1 and len(final) == 4096
    assert tmp_litter(tmp_path) == []


def test_atomic_write_same_path_from_threads_yields_complete_file(tmp_path):
    target = tmp_path / "entry.json"
    payloads = [bytes([index]) * 8192 for index in range(WRITERS)]
    errors: list[BaseException] = []

    def hammer(index: int) -> None:
        try:
            for _ in range(HAMMER_ITERATIONS):
                atomic_write_bytes(target, payloads[index])
                data = target.read_bytes()
                assert len(data) == 8192 and len(set(data)) == 1
        except BaseException as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=hammer, args=(i,)) for i in range(WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    assert tmp_litter(tmp_path) == []


# ------------------------------------------------------- dead-writer sweep


def _dead_pid() -> int:
    """A pid guaranteed to be dead: a child we spawned and reaped."""

    child = subprocess.Popen([sys.executable, "-c", "pass"])
    child.wait()
    return child.pid


def test_sweep_removes_dead_writer_files_and_keeps_live_ones(tmp_path):
    dead = _dead_pid()
    live = os.getpid()
    dead_modern = tmp_path / f"entry.json.tmp.{dead}.140210.7"
    dead_legacy = tmp_path / f"entry.json.tmp.{dead}"
    live_modern = tmp_path / f"entry.json.tmp.{live}.140210.8"
    unparsable = tmp_path / "entry.json.tmp.not-a-pid"
    for stale in (dead_modern, dead_legacy, live_modern, unparsable):
        stale.write_bytes(b"partial")

    assert writer_pid(dead_modern) == dead
    assert writer_pid(dead_legacy) == dead
    assert writer_pid(unparsable) is None

    removed = sweep_dead_writer_tmp_files(tmp_path)
    assert removed == 2
    assert not dead_modern.exists()
    assert not dead_legacy.exists()
    assert live_modern.exists()  # live writer mid-rename: untouchable
    assert unparsable.exists()  # unknown provenance: never guess


def test_result_cache_sweeps_dead_writer_litter_on_first_write(tmp_path):
    dead = _dead_pid()
    litter = tmp_path / f"aaaa.json.tmp.{dead}"
    tmp_path.mkdir(exist_ok=True)
    litter.write_bytes(b"partial")

    cache = ResultCache(tmp_path)
    cache.put(make_request(), make_result(1.0))
    assert not litter.exists()
    assert tmp_litter(tmp_path) == []


def test_trace_store_sweeps_dead_writer_litter_on_first_write(tmp_path):
    dead = _dead_pid()
    store = TraceStore(tmp_path)
    litter = Path(store.directory) / f"bbbb.trace.tmp.{dead}"
    litter.write_bytes(b"partial")

    store.put_bytes("cafe" * 16, b"payload")
    assert not litter.exists()


def test_failed_write_cleans_its_own_temp_file(tmp_path):
    target = tmp_path / "missing-dir" / "entry.json"
    with pytest.raises(OSError):
        atomic_write_bytes(target, b"data")
    assert tmp_litter(tmp_path) == []
