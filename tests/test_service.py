"""Integration tests for the simulation service over a loopback socket.

Every test runs a real :class:`~repro.service.ReproServer` on a background
event loop (:class:`tests.service_utils.ServerThread`) and talks to it with
the blocking :class:`~repro.service.ServiceClient`.  Ordering is always
established through protocol events (``accepted``, ``chunk-started``,
``done``) and hold-files — never through sleeps.
"""

from __future__ import annotations

import os

import pytest

from repro.config import SystemConfig
from repro.service import ServiceClient, ServiceEngine, run_plan
from repro.sim.comparison import comparison_plan
from repro.sim.engine import SerialRunner, SimEngine, SimPlan, SimRequest

from service_utils import SVC_TEST_DIR_ENV, ServerThread, registered_test_workloads


@pytest.fixture
def svc_dir(tmp_path, monkeypatch):
    """Coordination directory for instrumented workloads (inherited on fork)."""

    directory = tmp_path / "svc"
    directory.mkdir()
    monkeypatch.setenv(SVC_TEST_DIR_ENV, str(directory))
    return directory


def gated_request(seed: int, workload: str = "svcgate") -> SimRequest:
    return SimRequest(
        workload=workload,
        mode="none",
        scale="tiny",
        seed=seed,
        config=SystemConfig.scaled(),
    )


def read_until(client: ServiceClient, kind: str, sid=None) -> dict:
    """Read events until one of type ``kind`` (for ``sid``, when given)."""

    while True:
        event = client.read_event()
        if event.get("type") == kind and (sid is None or event.get("id") == sid):
            return event


# --------------------------------------------------------------- identity


def test_service_results_bit_identical_to_direct_engine():
    plan = comparison_plan(["intsort", "randacc"], scale="tiny")
    direct = SimEngine(runner=SerialRunner()).run(
        comparison_plan(["intsort", "randacc"], scale="tiny")
    )
    with ServerThread(workers=2) as daemon:
        engine = ServiceEngine(daemon.address, timeout=600.0)
        batch = engine.run(plan)
        engine.close()

    assert set(batch.results) == set(direct.results)
    assert batch.skipped == direct.skipped
    for digest, result in direct.results.items():
        assert batch.results[digest].as_dict() == result.as_dict()
    assert batch.stats.executed == batch.stats.unique - batch.stats.unavailable
    assert batch.stats.runner == "service"


def test_second_submission_is_served_entirely_from_memo():
    plan = comparison_plan(["intsort"], scale="tiny")
    with ServerThread(workers=2) as daemon:
        engine = ServiceEngine(daemon.address, timeout=600.0)
        cold = engine.run(comparison_plan(["intsort"], scale="tiny"))
        warm = engine.run(comparison_plan(["intsort"], scale="tiny"))
        with ServiceClient(daemon.address) as probe:
            counters = probe.server_stats()
        engine.close()

    assert warm.stats.executed == 0
    assert warm.stats.memo_hits == warm.stats.unique
    assert {d: r.as_dict() for d, r in warm.results.items()} == {
        d: r.as_dict() for d, r in cold.results.items()
    }
    assert counters["executed"] == cold.stats.executed
    assert counters["memo_hits"] == warm.stats.unique


def test_daemon_restart_served_from_persistent_cache(tmp_path):
    cache_dir = str(tmp_path / "results")
    plan = comparison_plan(["intsort"], scale="tiny")
    with ServerThread(workers=2, cache_dir=cache_dir) as daemon:
        engine = ServiceEngine(daemon.address, timeout=600.0)
        cold = engine.run(comparison_plan(["intsort"], scale="tiny"))
        engine.close()

    # A brand-new daemon process state, same cache directory: everything
    # must come from disk, nothing re-simulates.
    with ServerThread(workers=2, cache_dir=cache_dir) as daemon:
        engine = ServiceEngine(daemon.address, timeout=600.0)
        warm = engine.run(comparison_plan(["intsort"], scale="tiny"))
        with ServiceClient(daemon.address) as probe:
            counters = probe.server_stats()
        engine.close()

    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == warm.stats.unique
    assert counters["executed"] == 0
    assert {d: r.as_dict() for d, r in warm.results.items()} == {
        d: r.as_dict() for d, r in cold.results.items()
    }
    assert len(warm.results) == len(plan) - cold.stats.unavailable


# ------------------------------------------------------------ singleflight


def test_concurrent_clients_share_one_execution(svc_dir):
    """Two clients submitting the same point → exactly one simulation."""

    request = gated_request(seed=101)
    hold = svc_dir / "hold-101"
    hold.touch()
    with registered_test_workloads():
        with ServerThread(workers=1) as daemon:
            first = ServiceClient(daemon.address, timeout=120.0)
            second = ServiceClient(daemon.address, timeout=120.0)

            sid_a = first.submit_nowait([request])
            accepted_a = read_until(first, "accepted", sid_a)
            assert accepted_a["scheduled"] == 1
            # The chunk must be *running* (held at the gate) before the
            # second client submits, so the join is genuinely in-flight.
            read_until(first, "chunk-started", sid_a)

            sid_b = second.submit_nowait([request])
            accepted_b = read_until(second, "accepted", sid_b)
            assert accepted_b["joined"] == 1
            assert accepted_b["scheduled"] == 0

            hold.unlink()
            done_a = read_until(first, "done", sid_a)
            done_b = read_until(second, "done", sid_b)

            with ServiceClient(daemon.address) as probe:
                counters = probe.server_stats()
            first.close()
            second.close()

    assert counters["executed"] == 1
    assert counters["joined"] == 1
    (outcome_a,) = done_a["outcomes"]
    (outcome_b,) = done_b["outcomes"]
    assert outcome_a["status"] == outcome_b["status"] == "ok"
    assert outcome_a["result"] == outcome_b["result"]
    assert done_b["stats"]["executed"] == 1  # the shared result reached B


def test_duplicate_requests_within_one_submission_deduplicate():
    request = comparison_plan(["intsort"], scale="tiny")
    points = list(request)[:2]
    with ServerThread(workers=1) as daemon:
        with ServiceClient(daemon.address, timeout=600.0) as client:
            batch = run_plan(client, SimPlan(points + points + points))
    assert batch.stats.submitted == 6
    assert batch.stats.unique == 2
    assert batch.stats.deduplicated == 4
    assert len(batch.results) == 2


# ---------------------------------------------------------------- fairness


def test_chunks_interleave_fairly_across_clients(svc_dir):
    """A bulk client does not starve a small one: round-robin dispatch."""

    hold = svc_dir / "hold-201"
    hold.touch()
    with registered_test_workloads():
        with ServerThread(workers=1) as daemon:
            bulk = ServiceClient(daemon.address, timeout=120.0)
            small = ServiceClient(daemon.address, timeout=120.0)

            # Three workload groups → three chunks for the bulk client; the
            # first is gated so it occupies the single worker.
            sid_bulk = bulk.submit_nowait(
                [gated_request(201), gated_request(202), gated_request(203)]
            )
            read_until(bulk, "accepted", sid_bulk)
            read_until(bulk, "chunk-started", sid_bulk)

            sid_small = small.submit_nowait([gated_request(204)])
            accepted = read_until(small, "accepted", sid_small)
            assert accepted["chunks"] == 1

            hold.unlink()

            bulk_seqs = []
            while True:
                event = bulk.read_event()
                if event.get("type") == "chunk-started":
                    bulk_seqs.append(event["seq"])
                elif event.get("type") == "done":
                    break
            small_started = read_until(small, "chunk-started", sid_small)
            read_until(small, "done", sid_small)
            bulk.close()
            small.close()

    # Round-robin: the bulk client gets one more turn (it was at the
    # rotation head), then the small client's chunk dispatches — strictly
    # before the bulk backlog ends.  FIFO would dispatch it last.
    assert len(bulk_seqs) == 2, "bulk client should see its 2nd and 3rd dispatches"
    assert small_started["seq"] < max(bulk_seqs)


# ------------------------------------------------------------------ driver


def test_reproduce_paper_driver_accepts_service_flag():
    from repro.eval.report import build_engine

    with ServerThread(workers=2) as daemon:
        engine = build_engine(service=daemon.address)
        batch = engine.run(comparison_plan(["intsort"], scale="tiny"))
        assert batch.stats.runner == "service"
        assert len(batch.results) > 0
        engine.close()
