"""Property tests for the service's pure coordination structures.

The singleflight table, the fair scheduler and the circuit breaker are
deliberately synchronous, socket-free state machines, so they can be driven
through randomised interleavings of their whole operation alphabet and
checked against independent reference models:

* **Singleflight**: random join/leave/start/requeue/complete sequences
  never lose a waiter, never report creation twice, never allow a digest
  to be dispatched twice without an intervening requeue, and leave the
  table empty once every flight completes.
* **Scheduler**: a differential test against a list-based reference
  implementation, plus conservation — every queued request is popped
  exactly once or discarded exactly once, never both, never neither —
  and round-robin fairness across keys.
* **Circuit breaker**: random allow/success/failure/clock-advance
  sequences against a reference three-state machine on an injected fake
  clock (no sleeps) — states, failure counts, trip counts and cooldowns
  must agree at every step.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.config import SystemConfig
from repro.errors import ServiceError
from repro.service import (
    Chunk,
    CircuitBreaker,
    FairScheduler,
    SingleflightTable,
    split_requests,
)
from repro.sim.engine import SimRequest

DIGESTS = [f"d{i}" for i in range(4)]
WAITERS = [f"w{i}" for i in range(4)]
KEYS = ["alpha", "beta", "gamma"]


# ------------------------------------------------------------ singleflight


class SingleflightMachine(RuleBasedStateMachine):
    """Drive the table through random interleavings vs a reference model."""

    def __init__(self) -> None:
        super().__init__()
        self.table = SingleflightTable()
        self.model: dict[str, dict] = {}
        self.notified: list[tuple[str, frozenset]] = []

    @rule(digest=st.sampled_from(DIGESTS), waiter=st.sampled_from(WAITERS))
    def join(self, digest: str, waiter: str) -> None:
        expected_created = digest not in self.model
        created = self.table.join(digest, waiter)
        assert created == expected_created
        if expected_created:
            self.model[digest] = {"waiters": {waiter}, "started": False}
        else:
            self.model[digest]["waiters"].add(waiter)

    @rule(digest=st.sampled_from(DIGESTS), waiter=st.sampled_from(WAITERS))
    def leave(self, digest: str, waiter: str) -> None:
        flight = self.model.get(digest)
        # A pending flight is cancelled when no waiters remain after this
        # leave — including a zero-waiter flight (everyone left while it
        # was running, then a crash requeued it): nobody wants that work.
        expected_cancelled = (
            flight is not None
            and not flight["started"]
            and not (flight["waiters"] - {waiter})
        )
        cancelled = self.table.leave(digest, waiter)
        assert cancelled == expected_cancelled
        if flight is not None:
            flight["waiters"].discard(waiter)
            if expected_cancelled:
                del self.model[digest]

    @rule(digest=st.sampled_from(DIGESTS))
    def start(self, digest: str) -> None:
        flight = self.model.get(digest)
        if flight is not None and flight["started"]:
            # Dispatching a running digest again is a dispatcher bug.
            with pytest.raises(ServiceError):
                self.table.start(digest)
            return
        started = self.table.start(digest)
        assert started == (flight is not None)
        if flight is not None:
            flight["started"] = True

    @rule(digest=st.sampled_from(DIGESTS))
    def requeue(self, digest: str) -> None:
        self.table.requeue(digest)
        flight = self.model.get(digest)
        if flight is not None:
            flight["started"] = False

    @rule(digest=st.sampled_from(DIGESTS))
    def complete(self, digest: str) -> None:
        flight = self.model.pop(digest, None)
        expected = frozenset(flight["waiters"]) if flight is not None else frozenset()
        waiters, _request = self.table.complete(digest)
        # Exactly the waiters that joined and did not leave are notified —
        # nobody is lost, nobody is invented.
        assert waiters == expected
        self.notified.append((digest, waiters))

    @invariant()
    def table_matches_model(self) -> None:
        assert set(self.table) == set(self.model)
        for digest, flight in self.model.items():
            assert self.table.waiters(digest) == frozenset(flight["waiters"])
            assert self.table.started(digest) == flight["started"]

    def teardown(self) -> None:
        # Completing everything still pending must empty the table: no
        # flight can outlive its completion (no deadlocked waiters).
        for digest in list(self.model):
            self.complete(digest)
        assert len(self.table) == 0


TestSingleflightMachine = SingleflightMachine.TestCase
TestSingleflightMachine.settings = settings(max_examples=60, deadline=None)


# --------------------------------------------------------------- scheduler


@dataclass(frozen=True)
class FakeRequest:
    """Stands in for a SimRequest: the scheduler only reads ``digest``."""

    digest: str


class ReferenceScheduler:
    """Independent list-based reimplementation of the rotation contract."""

    def __init__(self) -> None:
        self.queues: dict[str, list[Chunk]] = {}
        self.rotation: list[str] = []

    def add(self, chunk: Chunk, front: bool = False) -> None:
        if chunk.key not in self.queues:
            self.queues[chunk.key] = []
            self.rotation.append(chunk.key)
        if front:
            self.queues[chunk.key].insert(0, chunk)
        else:
            self.queues[chunk.key].append(chunk)

    def next(self):
        while self.rotation:
            key = self.rotation[0]
            queue = self.queues.get(key, [])
            if not queue:
                self.rotation.pop(0)
                self.queues.pop(key, None)
                continue
            chunk = queue.pop(0)
            self.rotation.append(self.rotation.pop(0))
            if chunk.requests:
                return chunk
        return None

    def discard(self, digests: set[str]) -> set[str]:
        removed: set[str] = set()
        for queue in self.queues.values():
            for chunk in queue:
                kept = []
                for request in chunk.requests:
                    if request.digest in digests:
                        removed.add(request.digest)
                    else:
                        kept.append(request)
                chunk.requests = kept
        return removed


scheduler_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("add"),
            st.sampled_from(KEYS),
            st.integers(min_value=1, max_value=3),
            st.booleans(),
        ),
        st.tuples(st.just("next")),
        st.tuples(st.just("discard"), st.integers(min_value=0, max_value=7)),
    ),
    max_size=40,
)


@settings(max_examples=80, deadline=None)
@given(ops=scheduler_ops)
def test_scheduler_matches_reference_and_conserves_requests(ops) -> None:
    real = FairScheduler()
    ref = ReferenceScheduler()
    counter = 0
    added: set[str] = set()
    popped: list[str] = []
    discarded: set[str] = set()

    for op in ops:
        if op[0] == "add":
            _, key, size, front = op
            digests = [f"r{counter + i}" for i in range(size)]
            counter += size
            added.update(digests)
            # Two independently-built equal chunks (ids may differ; compare
            # by request content).
            real.add(
                Chunk(key=key, requests=[FakeRequest(d) for d in digests]),
                front=front,
            )
            ref.add(
                Chunk(key=key, requests=[FakeRequest(d) for d in digests]),
                front=front,
            )
        elif op[0] == "next":
            real_chunk = real.next()
            ref_chunk = ref.next()
            real_digests = [r.digest for r in real_chunk.requests] if real_chunk else None
            ref_digests = [r.digest for r in ref_chunk.requests] if ref_chunk else None
            assert real_digests == ref_digests
            if real_chunk is not None:
                assert real_chunk.key == ref_chunk.key
                popped.extend(real_digests)
        else:
            _, pick = op
            pending = sorted(real.pending_digests())
            doomed = set(pending[pick::3]) if pending else set()
            removed_real = real.discard_digests(doomed)
            removed_ref = ref.discard(doomed)
            assert removed_real == removed_ref
            discarded.update(removed_real)

    # Drain both to the end; they must agree the whole way down.
    while True:
        real_chunk = real.next()
        ref_chunk = ref.next()
        if real_chunk is None:
            assert ref_chunk is None
            break
        assert [r.digest for r in real_chunk.requests] == [
            r.digest for r in ref_chunk.requests
        ]
        popped.extend(r.digest for r in real_chunk.requests)

    # Conservation: every added request was popped exactly once or
    # discarded exactly once — never both, never lost.
    assert set(popped) | discarded == added
    assert set(popped) & discarded == set()
    assert len(popped) == len(set(popped))


@settings(max_examples=40, deadline=None)
@given(
    backlog=st.lists(
        st.tuples(st.sampled_from(KEYS), st.integers(min_value=1, max_value=3)),
        min_size=2,
        max_size=9,
    )
)
def test_scheduler_round_robin_never_starves_a_key(backlog) -> None:
    """While every key has queued work, K consecutive pops hit K distinct keys."""

    scheduler = FairScheduler()
    queued: dict[str, int] = {}
    counter = 0
    for key, size in backlog:
        requests = [FakeRequest(f"r{counter + i}") for i in range(size)]
        counter += size
        scheduler.add(Chunk(key=key, requests=requests))
        queued[key] = queued.get(key, 0) + 1

    keys_with_work = set(queued)
    window: list[str] = []
    while len(window) < len(keys_with_work):
        chunk = scheduler.next()
        assert chunk is not None
        window.append(chunk.key)
    # The first K pops (K = number of distinct backlogged keys) visit every
    # key exactly once: no key waits behind another key's whole backlog.
    assert sorted(window) == sorted(keys_with_work)


# ----------------------------------------------------------- split helper


def test_split_requests_respects_groups_and_size() -> None:
    config = SystemConfig.scaled()
    requests = [
        SimRequest(workload=w, mode=m, scale="tiny", seed=s, config=config)
        for w in ("intsort", "randacc")
        for s in (1, 2)
        for m in ("none", "stride", "ghb-regular")
    ]
    chunks = split_requests(requests, key="client", chunk_size=2)

    # Conservation of digests.
    chunked = [r.digest for chunk in chunks for r in chunk.requests]
    assert sorted(chunked) == sorted(r.digest for r in requests)
    for chunk in chunks:
        # Size bound, and one workload group per chunk (same traces).
        assert 1 <= len(chunk.requests) <= 2
        assert len({r.workload_key for r in chunk.requests}) == 1
        assert chunk.key == "client"
    # 4 groups of 3 requests, sliced at 2 → 8 chunks.
    assert len(chunks) == 8


# ---------------------------------------------------------- circuit breaker


class FakeClock:
    """A monotonic clock tests advance explicitly (never sleeps)."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


breaker_ops = st.lists(
    st.one_of(
        st.just(("allow",)),
        st.just(("success",)),
        st.just(("failure",)),
        st.tuples(
            st.just("advance"),
            st.floats(min_value=0.0, max_value=12.0,
                      allow_nan=False, allow_infinity=False),
        ),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(
    threshold=st.integers(min_value=1, max_value=4),
    reset=st.floats(min_value=0.0, max_value=8.0,
                    allow_nan=False, allow_infinity=False),
    probes=st.integers(min_value=1, max_value=3),
    ops=breaker_ops,
)
def test_circuit_breaker_matches_reference_model(threshold, reset, probes, ops):
    """Differential test: the breaker vs an independent three-state model."""

    clock = FakeClock()
    real = CircuitBreaker(
        failure_threshold=threshold,
        reset_timeout=reset,
        half_open_probes=probes,
        clock=clock,
    )
    model = {
        "state": "closed",
        "failures": 0,
        "opened_at": 0.0,
        "probes": 0,
        "opened": 0,
    }

    def model_allow() -> bool:
        if model["state"] == "closed":
            return True
        if model["state"] == "open":
            if clock.now - model["opened_at"] < reset:
                return False
            model["state"] = "half-open"
            model["probes"] = 0
        if model["probes"] >= probes:
            return False
        model["probes"] += 1
        return True

    def model_trip() -> None:
        if model["state"] != "open":
            model["opened"] += 1
        model["state"] = "open"
        model["opened_at"] = clock.now
        model["probes"] = 0

    def model_failure() -> None:
        model["failures"] += 1
        if model["state"] != "closed" or model["failures"] >= threshold:
            model_trip()

    for op in ops:
        if op[0] == "allow":
            assert real.allow() == model_allow()
        elif op[0] == "success":
            real.record_success()
            model.update(state="closed", failures=0, probes=0)
        elif op[0] == "failure":
            real.record_failure()
            model_failure()
        else:
            clock.advance(op[1])

        # The observable surface agrees after every single operation.
        assert real.state == model["state"]
        assert real.failures == model["failures"]
        assert real.opened_count == model["opened"]
        if model["state"] == "open":
            expected = max(0.0, model["opened_at"] + reset - clock.now)
            assert real.cooldown_remaining() == pytest.approx(expected)
        else:
            assert real.cooldown_remaining() == 0.0


def test_circuit_breaker_quarantine_lifecycle() -> None:
    """The canonical arc: trip, refuse, cool down, probe, recover."""

    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, reset_timeout=5.0, clock=clock)
    assert breaker.allow() and breaker.state == "closed"

    breaker.record_failure()
    assert breaker.allow(), "one failure below threshold must not trip"
    breaker.record_failure()
    assert breaker.state == "open" and breaker.opened_count == 1
    assert not breaker.allow(), "open breaker refuses without burning a timeout"

    clock.advance(4.999)
    assert not breaker.allow() and breaker.cooldown_remaining() > 0
    clock.advance(0.001)
    assert breaker.allow(), "cooldown elapsed: one probe goes through"
    assert breaker.state == "half-open"
    assert not breaker.allow(), "only one concurrent probe by default"

    breaker.record_failure()
    assert breaker.state == "open", "a failed probe re-opens immediately"
    clock.advance(5.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed" and breaker.failures == 0
    assert breaker.opened_count == 2
