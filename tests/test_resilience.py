"""Unit tests for the shared retry/backoff and deadline primitives.

Everything here is deterministic and sleep-free: the jitter is a pure
function of ``(seed, attempt)``, the deadline clock is injected, and the
client backoff test records the delays instead of serving them.
"""

from __future__ import annotations

import socket

import pytest

from repro.errors import DeadlineExceededError, ServiceError
from repro.resilience import Deadline, RetryPolicy
from repro.sim.engine import ResilienceStats, SerialRunner, SimEngine, SimPlan
from repro.sim.engine import runner as runner_module


class TestRetryPolicy:
    def test_delays_are_deterministic_for_a_seed(self):
        policy = RetryPolicy(seed="alpha")
        again = RetryPolicy(seed="alpha")
        assert list(policy.delays()) == list(again.delays())

    def test_zero_jitter_is_exact_capped_exponential(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, max_delay=1.0, multiplier=2.0, jitter=0.0
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.8, 1.0]

    def test_delay_never_exceeds_cap_plus_jitter(self):
        policy = RetryPolicy(
            max_attempts=30, base_delay=0.5, max_delay=2.0, multiplier=3.0,
            jitter=0.25, seed="cap",
        )
        bound = policy.max_delay * (1.0 + policy.jitter)
        for attempt in range(60):
            delay = policy.delay(attempt)
            assert 0.0 <= delay <= bound
        # Far past the cap the exponential term is saturated: only the
        # per-attempt jitter still varies the delay.
        assert policy.delay(50) >= policy.max_delay

    def test_jitter_is_bounded_fraction(self):
        policy = RetryPolicy(jitter=0.25, seed="frac")
        for attempt in range(20):
            base = RetryPolicy(jitter=0.0).delay(attempt)
            assert base <= policy.delay(attempt) < base * 1.25 + 1e-12

    def test_distinct_seeds_decorrelate(self):
        first = RetryPolicy(seed="client-a")
        second = first.with_seed("client-b")
        # Same shape, different jitter sequence.
        assert second.max_attempts == first.max_attempts
        assert list(first.delays()) != list(second.delays())

    def test_retries_property_and_delays_length(self):
        policy = RetryPolicy(max_attempts=4)
        assert policy.retries == 3
        assert len(list(policy.delays())) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestDeadline:
    def test_remaining_and_expiry_with_fake_clock(self):
        now = [100.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(5.0)
        assert not deadline.expired
        now[0] = 104.0
        assert deadline.remaining() == pytest.approx(1.0)
        now[0] = 105.0
        assert deadline.expired
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            deadline.check("sweep")

    def test_after_normalises_none_number_and_deadline(self):
        assert Deadline.after(None) is None
        existing = Deadline(1.0)
        assert Deadline.after(existing) is existing
        fresh = Deadline.after(2.5, clock=lambda: 0.0)
        assert isinstance(fresh, Deadline)
        assert fresh.seconds == 2.5

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)


class TestRetryExecution:
    """The serial runner retries *failed* requests under a policy."""

    def _flaky_execute(self, fail_times: int):
        calls = {"n": 0}
        real = runner_module.execute_request

        def flaky(request, workload):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                return None, f"{request.workload}/{request.mode}: injected fault"
            return real(request, workload)

        return flaky, calls

    def _tiny_plan(self):
        from repro.config import SystemConfig
        from repro.sim.engine import SimRequest

        return SimPlan([
            SimRequest(workload="intsort", mode="none", scale="tiny", seed=5,
                       config=SystemConfig.scaled())
        ])

    def test_transient_failure_is_retried_to_success(self, monkeypatch):
        flaky, calls = self._flaky_execute(fail_times=2)
        monkeypatch.setattr(runner_module, "execute_request", flaky)
        runner = SerialRunner(
            trace_store=None,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
        )
        engine = SimEngine(runner=runner)
        batch = engine.run(self._tiny_plan())
        assert len(batch) == 1 and not batch.failures
        assert calls["n"] == 3
        assert runner.resilience.retried == 2
        assert batch.stats.retried == 2

    def test_attempts_are_bounded_and_failure_surfaces(self, monkeypatch):
        flaky, calls = self._flaky_execute(fail_times=99)
        monkeypatch.setattr(runner_module, "execute_request", flaky)
        runner = SerialRunner(
            trace_store=None,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
        )
        engine = SimEngine(runner=runner)
        batch = engine.run(self._tiny_plan())
        assert calls["n"] == 3  # initial + 2 retries, then give up
        assert batch.stats.failed == 1
        assert any("injected fault" in label for label in batch.stats.failures)

    def test_resilience_stats_merge(self):
        left = ResilienceStats(retried=1, requeues=2)
        left.merge(ResilienceStats(retried=3, hung_killed=1, degraded_serial=4))
        assert (left.retried, left.requeues, left.hung_killed, left.degraded_serial) == (
            4, 2, 1, 4,
        )


class TestClientBackoffCap:
    """Regression: the service client's backoff used to double unbounded."""

    def _refused_address(self) -> str:
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return f"127.0.0.1:{port}"

    def test_connect_backoff_is_capped_jittered_and_bounded(self, monkeypatch):
        from repro.service import client as client_module

        recorded: list[float] = []
        monkeypatch.setattr(client_module.time, "sleep", recorded.append)
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, max_delay=25.0, multiplier=4.0,
            jitter=0.25, seed="test-client",
        )
        with pytest.raises(ServiceError, match="after 5 attempts"):
            client_module.ServiceClient(
                self._refused_address(), timeout=1.0, retry_policy=policy
            )
        # One backoff per retry, following the policy exactly: capped at
        # max_delay * (1 + jitter) instead of doubling without bound.
        assert recorded == [policy.delay(attempt) for attempt in range(4)]
        assert all(delay <= 25.0 * 1.25 for delay in recorded)
        assert recorded[1] >= 25.0  # the cap is in force from attempt 1 on
