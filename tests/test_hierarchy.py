"""Tests for the assembled memory hierarchy."""

import pytest

from repro.config import SystemConfig
from repro.memory.address_space import AddressSpace
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def hierarchy():
    config = SystemConfig.scaled()
    space = AddressSpace()
    space.allocate_array("data", 4096, values=range(4096))
    return MemoryHierarchy(config, space), space, config


class TestDemandPath:
    def test_cold_miss_goes_to_dram(self, hierarchy):
        hier, space, config = hierarchy
        addr = space.regions[0].base
        result = hier.demand_access(addr, 0.0)
        assert result.level == "dram"
        assert result.completion_time >= config.dram.access_latency_cycles

    def test_second_access_hits_l1(self, hierarchy):
        hier, space, config = hierarchy
        addr = space.regions[0].base
        first = hier.demand_access(addr, 0.0)
        second = hier.demand_access(addr, first.completion_time + 1)
        assert second.level == "l1"
        assert second.l1_hit
        assert second.completion_time - (first.completion_time + 1) <= config.l1.hit_latency + config.tlb.l2_hit_latency

    def test_access_during_fill_merges(self, hierarchy):
        hier, space, _ = hierarchy
        addr = space.regions[0].base
        first = hier.demand_access(addr, 0.0)
        merged = hier.demand_access(addr, 1.0)
        assert merged.level == "l1_inflight"
        assert merged.completion_time <= first.completion_time + 1
        assert hier.l1.stats.inflight_merges == 1

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        hier, space, config = hierarchy
        base = space.regions[0].base
        # Touch enough distinct lines to evict the first from the L1 but not the L2.
        lines_to_fill = (config.l1.size_bytes // 64) * 2 + 8
        time = 0.0
        for i in range(lines_to_fill):
            result = hier.demand_access(base + 64 * i, time)
            time = result.completion_time + 1
        assert not hier.l1.contains(base, time)
        result = hier.demand_access(base, time)
        assert result.level in ("l2", "l2_inflight")

    def test_snoop_hook_sees_reads_not_writes(self, hierarchy):
        hier, space, _ = hierarchy
        seen = []
        hier.set_demand_snoop(lambda addr, time, level: seen.append((addr, level)))
        addr = space.regions[0].base
        hier.demand_access(addr, 0.0)
        hier.demand_access(addr + 8, 500.0, write=True)
        assert len(seen) == 1

    def test_advance_hook_called_with_access_time(self, hierarchy):
        hier, space, _ = hierarchy
        times = []
        hier.set_advance_hook(times.append)
        hier.demand_access(space.regions[0].base, 123.0)
        assert times == [123.0]

    def test_negative_time_rejected(self, hierarchy):
        hier, space, _ = hierarchy
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            hier.demand_access(space.regions[0].base, -1.0)


class TestPrefetchPath:
    def test_prefetch_then_demand_hits(self, hierarchy):
        hier, space, _ = hierarchy
        addr = space.regions[0].base
        fill = hier.prefetch_access(addr, 0.0)
        assert fill is not None
        result = hier.demand_access(addr, fill + 1)
        assert result.l1_hit
        assert hier.l1.stats.prefetch_used == 1

    def test_unmapped_prefetch_discarded(self, hierarchy):
        hier, _, _ = hierarchy
        assert hier.prefetch_access(0x10, 0.0) is None
        assert hier.dropped_prefetches == 1

    def test_redundant_prefetch_counted(self, hierarchy):
        hier, space, _ = hierarchy
        addr = space.regions[0].base
        fill = hier.prefetch_access(addr, 0.0)
        hier.prefetch_access(addr, fill + 1)
        assert hier.l1.stats.prefetch_redundant == 1

    def test_fill_callback_invoked_with_fill_time(self, hierarchy):
        hier, space, _ = hierarchy
        calls = []
        fill = hier.prefetch_access(space.regions[0].base, 0.0, on_fill=lambda a, t: calls.append((a, t)))
        assert calls and calls[0][1] == fill

    def test_prefetch_counts_as_prefetch_dram_traffic(self, hierarchy):
        hier, space, _ = hierarchy
        hier.prefetch_access(space.regions[0].base, 0.0)
        assert hier.dram.stats.prefetch_accesses == 1
        assert hier.dram.stats.demand_accesses == 0

    def test_mshr_next_free_reflects_outstanding_fills(self, hierarchy):
        hier, space, config = hierarchy
        base = space.regions[0].base
        for i in range(config.l1.mshrs):
            hier.prefetch_access(base + 64 * i, 0.0)
        assert hier.l1_mshr_next_free(0.0) > 0.0


class TestStatsCollection:
    def test_collect_stats_structure(self, hierarchy):
        hier, space, _ = hierarchy
        hier.demand_access(space.regions[0].base, 0.0)
        hier.finalize()
        stats = hier.collect_stats()
        assert "demand_read_hit_rate" in stats.l1
        assert stats.dram["total_accesses"] >= 1
        assert stats.as_dict()["dropped_prefetches"] == 0

    def test_read_line_passthrough(self, hierarchy):
        hier, space, _ = hierarchy
        assert hier.read_line(space.regions[0].base)[:4] == [0, 1, 2, 3]

    def test_reset(self, hierarchy):
        hier, space, _ = hierarchy
        hier.demand_access(space.regions[0].base, 0.0)
        hier.reset()
        assert hier.l1.stats.demand_read_accesses == 0
        assert hier.dram.stats.total_accesses == 0
