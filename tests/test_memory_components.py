"""Tests for the MSHR file, DRAM model and TLB."""

import pytest

from repro.config import DRAMConfig, TLBConfig
from repro.errors import ConfigurationError
from repro.memory.dram import DRAMModel
from repro.memory.mshr import MSHRFile
from repro.memory.tlb import TLB


class TestMSHRFile:
    def test_allocate_when_free_is_immediate(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(10.0) == 10.0

    def test_allocation_delayed_when_full(self):
        mshrs = MSHRFile(1)
        grant = mshrs.allocate(0.0)
        mshrs.register_fill(100.0)
        assert mshrs.next_free_time(10.0) == 100.0
        delayed = mshrs.allocate(10.0)
        assert delayed == 100.0
        assert mshrs.total_stall_cycles == pytest.approx(90.0)
        assert grant == 0.0

    def test_slots_reclaimed_after_fill(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0.0)
        mshrs.register_fill(50.0)
        assert mshrs.next_free_time(60.0) == 60.0
        assert mshrs.in_flight == 0

    def test_capacity_enforced(self):
        mshrs = MSHRFile(3)
        for i in range(3):
            mshrs.allocate(0.0)
            mshrs.register_fill(100.0 + i)
        assert mshrs.next_free_time(0.0) == 100.0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MSHRFile(0)

    def test_reset(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0.0)
        mshrs.register_fill(10.0)
        mshrs.reset()
        assert mshrs.in_flight == 0
        assert mshrs.total_allocations == 0


class TestDRAM:
    def test_single_access_latency(self):
        dram = DRAMModel(DRAMConfig(access_latency_cycles=200, channels=1, line_service_cycles=16))
        assert dram.access(0.0) == 200.0

    def test_bandwidth_serialisation_on_one_channel(self):
        dram = DRAMModel(DRAMConfig(access_latency_cycles=200, channels=1, line_service_cycles=16))
        first = dram.access(0.0)
        second = dram.access(0.0)
        assert second == first + 16

    def test_channels_parallelise(self):
        dram = DRAMModel(DRAMConfig(access_latency_cycles=200, channels=2, line_service_cycles=16))
        assert dram.access(0.0) == 200.0
        assert dram.access(0.0) == 200.0
        assert dram.access(0.0) == 216.0

    def test_stats_split_demand_and_prefetch(self):
        dram = DRAMModel(DRAMConfig())
        dram.access(0.0)
        dram.access(0.0, is_prefetch=True)
        dram.access(0.0, is_writeback=True)
        assert dram.stats.demand_accesses == 1
        assert dram.stats.prefetch_accesses == 1
        assert dram.stats.writebacks == 1
        assert dram.stats.total_accesses == 3

    def test_reset(self):
        dram = DRAMModel(DRAMConfig())
        dram.access(0.0)
        dram.reset()
        assert dram.stats.total_accesses == 0
        assert dram.access(0.0) == DRAMConfig().access_latency_cycles


class TestTLB:
    def test_first_access_walks(self):
        tlb = TLB(TLBConfig())
        latency = tlb.translate(0x10000, 0.0)
        assert latency == TLBConfig().l2_hit_latency + TLBConfig().walk_latency
        assert tlb.stats.walks == 1

    def test_second_access_hits_l1(self):
        tlb = TLB(TLBConfig())
        tlb.translate(0x10000, 0.0)
        assert tlb.translate(0x10008, 1.0) == 0.0
        assert tlb.stats.l1_hits == 1

    def test_l1_eviction_falls_back_to_l2(self):
        config = TLBConfig(l1_entries=2, l2_entries=64)
        tlb = TLB(config)
        for page in range(4):
            tlb.translate(page * config.page_bytes, 0.0)
        # Page 0 has been evicted from the 2-entry L1 but is still in the L2.
        latency = tlb.translate(0, 0.0)
        assert latency == config.l2_hit_latency
        assert tlb.stats.l2_hits >= 1

    def test_hit_rate_statistic(self):
        tlb = TLB(TLBConfig())
        tlb.translate(0, 0.0)
        tlb.translate(8, 0.0)
        assert tlb.stats.l1_hit_rate == pytest.approx(0.5)

    def test_reset(self):
        tlb = TLB(TLBConfig())
        tlb.translate(0, 0.0)
        tlb.reset()
        assert tlb.stats.accesses == 0
        assert tlb.translate(0, 0.0) > 0
