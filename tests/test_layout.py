"""Tests for cache-line and page arithmetic helpers."""

import pytest

from repro.memory.layout import (
    WORDS_PER_LINE,
    align_up,
    line_address,
    line_index,
    line_offset_bytes,
    line_offset_words,
    lines_covering,
    page_number,
)


class TestLineArithmetic:
    def test_line_address_aligns_down(self):
        assert line_address(0) == 0
        assert line_address(63) == 0
        assert line_address(64) == 64
        assert line_address(130) == 128

    def test_line_index(self):
        assert line_index(0) == 0
        assert line_index(64) == 1
        assert line_index(6400) == 100

    def test_line_offsets(self):
        assert line_offset_bytes(70) == 6
        assert line_offset_words(72) == 1
        assert line_offset_words(64) == 0

    def test_words_per_line(self):
        assert WORDS_PER_LINE == 8

    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(4095) == 0
        assert page_number(4096) == 1


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(128, 64) == 128

    def test_rounds_up(self):
        assert align_up(130, 64) == 192

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            align_up(10, 0)


class TestLinesCovering:
    def test_single_line(self):
        assert lines_covering(0, 8) == [0]

    def test_crossing_boundary(self):
        assert lines_covering(60, 8) == [0, 64]

    def test_multiple_lines(self):
        assert lines_covering(0, 256) == [0, 64, 128, 192]

    def test_zero_size(self):
        assert lines_covering(100, 0) == []
