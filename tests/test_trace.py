"""Tests for the dynamic trace representation and builder."""

import pytest

from repro.cpu.trace import OpKind, Trace, TraceBuilder, TraceOp
from repro.errors import TraceError


class TestTraceBuilder:
    def test_ops_get_increasing_indices(self):
        tb = TraceBuilder()
        first = tb.load(0x1000)
        second = tb.compute(2, deps=[first])
        third = tb.store(0x2000, deps=[second])
        assert (first, second, third) == (0, 1, 2)

    def test_forward_dependence_rejected(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.load(0x1000, deps=[5])

    def test_zero_length_compute_rejected(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.compute(0)

    def test_build_produces_trace(self):
        tb = TraceBuilder()
        tb.load(0x1000)
        tb.software_prefetch(0x2000)
        tb.branch()
        trace = tb.build()
        assert isinstance(trace, Trace)
        assert len(trace) == 3

    def test_len_tracks_ops(self):
        tb = TraceBuilder()
        assert len(tb) == 0
        tb.load(0)
        assert len(tb) == 1


class TestTrace:
    def _sample(self) -> Trace:
        tb = TraceBuilder()
        a = tb.load(0x1000)
        tb.compute(3, deps=[a])
        tb.store(0x2000, deps=[a])
        tb.software_prefetch(0x3000)
        tb.branch()
        return tb.build()

    def test_instruction_count_includes_compute_blocks(self):
        assert self._sample().instruction_count() == 1 + 3 + 1 + 1 + 1

    def test_kind_counters(self):
        trace = self._sample()
        assert trace.count_kind(OpKind.LOAD) == 1
        assert trace.count_kind(OpKind.STORE) == 1
        assert trace.count_kind(OpKind.SOFTWARE_PREFETCH) == 1
        assert trace.memory_op_count() == 2

    def test_summary(self):
        summary = self._sample().summary()
        assert summary["ops"] == 5
        assert summary["loads"] == 1
        assert summary["branches"] == 1

    def test_validate_accepts_good_trace(self):
        self._sample().validate()

    def test_validate_rejects_bad_dependence(self):
        trace = Trace([TraceOp(OpKind.LOAD, addr=0, deps=(3,))])
        with pytest.raises(TraceError):
            trace.validate()

    def test_indexing_and_iteration(self):
        trace = self._sample()
        assert trace[0].kind == OpKind.LOAD
        assert len(list(trace)) == len(trace)
