"""Tests for the workload framework, data generators and the eight benchmarks."""

import numpy as np
import pytest

from repro.cpu.trace import OpKind
from repro.errors import RegistryError, WorkloadError
from repro.workloads import WORKLOAD_ORDER, WORKLOADS, build_workload, registry
from repro.workloads.base import WorkloadScale
from repro.workloads.data.distributions import random_keys, random_permutation, zipf_keys
from repro.workloads.data.rmat import edges_to_csr, generate_rmat_csr, generate_rmat_edges


class TestDataGenerators:
    def test_rmat_edge_count(self):
        sources, destinations = generate_rmat_edges(8, 4, seed=1)
        assert sources.size == destinations.size == 4 * 256
        assert sources.max() < 256 and destinations.max() < 256

    def test_rmat_reproducible(self):
        first = generate_rmat_edges(8, 4, seed=9)
        second = generate_rmat_edges(8, 4, seed=9)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])

    def test_rmat_degree_skew(self):
        graph = generate_rmat_csr(10, 8, seed=2)
        degrees = np.diff(graph.row_offsets)
        assert degrees.max() > 8 * np.median(np.maximum(degrees, 1))

    def test_csr_structure_consistent(self):
        graph = generate_rmat_csr(8, 4, seed=3)
        assert graph.row_offsets[0] == 0
        assert graph.row_offsets[-1] == graph.num_edges
        assert np.all(np.diff(graph.row_offsets) >= 0)
        assert graph.columns.size == graph.num_edges
        for vertex in (0, 5, graph.num_vertices - 1):
            assert graph.out_degree(vertex) == len(graph.neighbours(vertex))

    def test_csr_drops_self_loops(self):
        sources = np.array([1, 2, 3], dtype=np.int64)
        destinations = np.array([1, 3, 2], dtype=np.int64)
        graph = edges_to_csr(4, sources, destinations)
        assert graph.num_edges == 2

    def test_random_keys_bounds(self):
        keys = random_keys(1000, 64, seed=5)
        assert keys.min() >= 0 and keys.max() < 64

    def test_random_permutation_is_permutation(self):
        perm = random_permutation(128, seed=6)
        assert sorted(perm.tolist()) == list(range(128))

    def test_zipf_keys_skewed(self):
        keys = zipf_keys(5000, 1000, seed=7)
        counts = np.bincount(keys, minlength=1000)
        assert counts[0] > counts[500]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_keys(0, 10)
        with pytest.raises(ValueError):
            generate_rmat_edges(0, 4)
        with pytest.raises(ValueError):
            zipf_keys(10, 10, exponent=1.0)


class TestWorkloadScale:
    def test_known_scales(self):
        assert WorkloadScale.from_name("tiny").factor < WorkloadScale.from_name("default").factor

    def test_unknown_scale_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadScale.from_name("enormous")

    def test_scaled_respects_minimum(self):
        assert WorkloadScale.from_name("tiny").scaled(100, minimum=64) == 64


class TestRegistry:
    def test_registry_matches_order(self):
        assert set(WORKLOADS) == set(registry.names())
        assert WORKLOAD_ORDER == registry.paper_names()
        assert len(WORKLOAD_ORDER) == 8
        assert len(registry.names()) == 11

    def test_unknown_workload_rejected(self):
        with pytest.raises(RegistryError):
            build_workload("nonexistent")


class TestEachWorkload:
    def test_builds_and_describes(self, tiny_workloads, each_workload_name):
        workload = tiny_workloads.get(each_workload_name)
        description = workload.description()
        assert description["name"] == each_workload_name
        assert description["pattern"]
        assert workload.space.mapped_bytes > 0

    def test_plain_trace_valid_and_nontrivial(self, tiny_workloads, each_workload_name):
        workload = tiny_workloads.get(each_workload_name)
        trace = workload.trace("plain")
        trace.validate()
        assert trace.count_kind(OpKind.LOAD) > 50
        assert trace.count_kind(OpKind.SOFTWARE_PREFETCH) == 0

    def test_plain_trace_is_cached(self, tiny_workloads, each_workload_name):
        workload = tiny_workloads.get(each_workload_name)
        assert workload.trace("plain") is workload.trace("plain")

    def test_software_trace_adds_prefetches_or_is_unavailable(
        self, tiny_workloads, each_workload_name
    ):
        workload = tiny_workloads.get(each_workload_name)
        if not workload.supports_software_prefetch():
            with pytest.raises(WorkloadError):
                workload.trace("software")
            return
        software = workload.trace("software")
        plain = workload.trace("plain")
        assert software.count_kind(OpKind.SOFTWARE_PREFETCH) > 0
        assert software.instruction_count() > plain.instruction_count()

    def test_manual_configuration_valid(self, tiny_workloads, each_workload_name):
        workload = tiny_workloads.get(each_workload_name)
        config = workload.manual_configuration()
        config.validate()
        assert config.kernels
        assert any(r.load_kernel for r in config.ranges)
        # Kernel code must fit comfortably in the shared PPU instruction cache.
        assert config.code_footprint_bytes() <= 4096

    def test_trace_addresses_are_mapped(self, tiny_workloads, each_workload_name):
        workload = tiny_workloads.get(each_workload_name)
        trace = workload.trace("plain")
        for op in list(trace)[:500]:
            if op.kind in (OpKind.LOAD, OpKind.STORE):
                assert workload.space.is_mapped(op.addr)

    def test_unknown_variant_rejected(self, tiny_workloads):
        with pytest.raises(WorkloadError):
            tiny_workloads.get("intsort").trace("mystery")


class TestWorkloadSpecifics:
    def test_pagerank_has_no_software_mode(self, tiny_workloads):
        assert not tiny_workloads.get("pagerank").supports_software_prefetch()

    def test_hj8_trace_walks_chains(self, tiny_workloads):
        workload = tiny_workloads.get("hj8")
        trace = workload.trace("plain")
        # More loads than 3 per probe implies at least some chain walking.
        assert trace.count_kind(OpKind.LOAD) > 3 * workload.num_probes

    def test_g500_csr_queue_contents_written(self, tiny_workloads):
        workload = tiny_workloads.get("g500-csr")
        workload.trace("plain")
        # The BFS queue must contain the traversal order for the prefetcher to read.
        values = workload.queue.to_list()
        assert values[0] == workload._root
        assert any(v != 0 for v in values[1:10])

    def test_g500_list_nodes_linked(self, tiny_workloads):
        workload = tiny_workloads.get("g500-list")
        head = next(v for v in workload.heads.to_list() if v != 0)
        assert workload.space.is_mapped(head)

    def test_randacc_table_is_power_of_two(self, tiny_workloads):
        workload = tiny_workloads.get("randacc")
        assert workload.table_entries & (workload.table_entries - 1) == 0
        assert workload.table_mask == workload.table_entries - 1

    def test_intsort_counts_match_key_space(self, tiny_workloads):
        workload = tiny_workloads.get("intsort")
        assert len(workload.counts) == workload.key_space
