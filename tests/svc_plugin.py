"""Workload plugin for spawned-daemon chaos tests.

A ``repro serve`` subprocess only knows the workloads its own interpreter
registered — the instrumented test workloads from
:mod:`tests.service_utils` exist only in the test process.  The HA chaos
tests bridge that by spawning daemons with::

    REPRO_WORKLOAD_PLUGINS=svc_plugin  PYTHONPATH=<tests dir>:...

so :mod:`repro.workloads` imports this module inside the daemon, which
registers the same hold-file-gated / crashing workloads there (coordinated
through ``REPRO_SVC_TEST_DIR`` exactly like the in-process tier).

Import-time side effects are the entire point of this module; it must stay
importable with nothing but ``repro`` and ``service_utils`` on the path.
"""

from repro.workloads.registry import REGISTRY, register_workload

from service_utils import SvcCrashAlwaysWorkload, SvcCrashOnceWorkload, SvcGateWorkload

for _workload in (SvcGateWorkload, SvcCrashOnceWorkload, SvcCrashAlwaysWorkload):
    if _workload.name not in REGISTRY:
        register_workload(scales=("tiny",))(_workload)
