"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.cpu.trace import TraceBuilder
from repro.memory.address_space import AddressSpace
from repro.memory.cache import Cache
from repro.memory.layout import align_up, line_address, lines_covering
from repro.memory.mshr import MSHRFile
from repro.programmable.ewma import EWMA, MAX_LOOKAHEAD, MIN_LOOKAHEAD, LookaheadCalculator
from repro.programmable.events import PrefetchRequest
from repro.programmable.interpreter import KernelContext, execute_kernel
from repro.programmable.kernel import KernelBuilder
from repro.programmable.queues import PrefetchRequestQueue

word_values = st.integers(min_value=-(2**63), max_value=2**63 - 1)
addresses = st.integers(min_value=0, max_value=2**48)


class TestLayoutProperties:
    @given(addresses)
    def test_line_address_is_aligned_and_below(self, addr):
        base = line_address(addr)
        assert base % 64 == 0
        assert base <= addr < base + 64

    @given(st.integers(min_value=0, max_value=2**30), st.sampled_from([8, 64, 4096]))
    def test_align_up_properties(self, value, alignment):
        aligned = align_up(value, alignment)
        assert aligned % alignment == 0
        assert 0 <= aligned - value < alignment

    @given(addresses, st.integers(min_value=1, max_value=4096))
    def test_lines_covering_covers_every_byte(self, addr, size):
        lines = lines_covering(addr, size)
        assert line_address(addr) == lines[0]
        assert line_address(addr + size - 1) == lines[-1]
        assert all(b - a == 64 for a, b in zip(lines, lines[1:]))


class TestAddressSpaceProperties:
    @given(st.lists(word_values, min_size=1, max_size=64))
    @settings(max_examples=30)
    def test_array_roundtrip(self, values):
        space = AddressSpace()
        array = space.allocate_array("a", len(values), values=values)
        assert array.to_list() == values

    @given(st.lists(st.integers(min_value=8, max_value=512), min_size=1, max_size=10))
    @settings(max_examples=30)
    def test_allocations_never_overlap(self, sizes):
        space = AddressSpace()
        regions = [space.allocate(f"r{i}", size) for i, size in enumerate(sizes)]
        for first, second in zip(regions, regions[1:]):
            assert first.end <= second.base


class TestCacheProperties:
    @given(st.lists(addresses, min_size=1, max_size=200))
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = Cache(CacheConfig(name="c", size_bytes=2048, associativity=2, hit_latency=1, mshrs=4))
        capacity_lines = cache.config.size_bytes // 64
        for i, addr in enumerate(addrs):
            cache.insert(addr, float(i))
            assert cache.resident_lines <= capacity_lines
        # Everything inserted is either resident or was evicted.
        assert cache.stats.evictions + cache.resident_lines == len(
            {(a // 64) for a in addrs}
        ) or cache.stats.evictions >= 0

    @given(st.lists(addresses, min_size=1, max_size=100))
    @settings(max_examples=30)
    def test_most_recent_line_always_resident(self, addrs):
        cache = Cache(CacheConfig(name="c", size_bytes=1024, associativity=2, hit_latency=1, mshrs=4))
        for i, addr in enumerate(addrs):
            cache.insert(addr, float(i))
            assert cache.lookup(addr) is not None


class TestMSHRProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e4),
                              st.floats(min_value=1, max_value=500)), min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_outstanding_never_exceeds_capacity(self, requests):
        mshrs = MSHRFile(4)
        time = 0.0
        for arrival, latency in requests:
            time = max(time, arrival)
            grant = mshrs.allocate(time)
            assert grant >= time
            mshrs.register_fill(grant + latency)
            assert mshrs.in_flight <= 4


class TestEWMAProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_ewma_stays_within_sample_range(self, samples):
        ewma = EWMA(alpha=0.3)
        for sample in samples:
            ewma.update(sample)
        assert min(samples) - 1e-6 <= ewma.value <= max(samples) + 1e-6

    @given(
        st.lists(st.floats(min_value=1, max_value=1e5), min_size=2, max_size=40),
        st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=50)
    def test_lookahead_always_in_bounds(self, gaps, chain_latency):
        calc = LookaheadCalculator(iteration_window=2)
        time = 0.0
        for gap in gaps:
            calc.observe_iteration(time)
            time += gap
        calc.observe_chain(0.0, chain_latency)
        assert MIN_LOOKAHEAD <= calc.lookahead() <= MAX_LOOKAHEAD


class TestQueueProperties:
    @given(st.lists(addresses, min_size=1, max_size=100), st.integers(min_value=1, max_value=16))
    @settings(max_examples=50)
    def test_bounded_and_fifo(self, addrs, capacity):
        queue = PrefetchRequestQueue(capacity)
        for addr in addrs:
            queue.push(PrefetchRequest(addr=addr, tag=-1, issue_time=0.0))
            assert len(queue) <= capacity
        drained = []
        while len(queue):
            drained.append(queue.pop().addr)
        # The surviving entries are the newest ones, in arrival order.
        assert drained == addrs[-len(drained):]
        assert queue.dropped == max(0, len(addrs) - capacity)


class TestTraceProperties:
    @given(st.lists(st.sampled_from(["load", "store", "compute", "branch", "swpf"]),
                    min_size=1, max_size=100))
    @settings(max_examples=50)
    def test_builder_always_produces_valid_traces(self, kinds):
        tb = TraceBuilder()
        last = None
        for kind in kinds:
            deps = [last] if last is not None else []
            if kind == "load":
                last = tb.load(0x1000, deps=deps)
            elif kind == "store":
                tb.store(0x2000, deps=deps)
            elif kind == "compute":
                last = tb.compute(2, deps=deps)
            elif kind == "branch":
                tb.branch(deps=deps)
            else:
                tb.software_prefetch(0x3000, deps=deps)
        trace = tb.build()
        trace.validate()
        assert trace.instruction_count() >= len(trace)


class TestKernelProperties:
    @given(word_values, st.integers(min_value=0, max_value=60), st.integers(min_value=1, max_value=8))
    @settings(max_examples=50)
    def test_arithmetic_kernel_matches_python(self, data, shift_base, scale):
        k = KernelBuilder("prop")
        value = k.add(k.mul(k.get_data(), scale), shift_base)
        k.prefetch(value)
        program = k.build()
        ctx = KernelContext(
            vaddr=0x1000,
            line_base=0x1000 - (0x1000 % 64),
            line_words=[data] * 8,
            global_registers=[],
        )
        result = execute_kernel(program, ctx)
        assert not result.aborted
        expected = ((data * scale) + shift_base) & ((1 << 64) - 1)
        assert result.prefetch_addresses == [expected]
