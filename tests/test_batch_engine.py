"""Tests for the batch simulation engine (plan → execute → cache)."""

import json

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigurationError, DuplicateResultError
from repro.eval.figure7 import run_figure7
from repro.sim import (
    ComparisonResult,
    MultiprocessRunner,
    PrefetchMode,
    ResultCache,
    SerialRunner,
    SimEngine,
    SimPlan,
    SimRequest,
    SimulationResult,
    run_comparison,
)
from repro.sim.comparison import comparison_plan
from repro.sim.engine import UNAVAILABLE, group_requests
from repro.sim.modes import FIGURE7_MODES
from repro.sim.sweeps import ppu_count_frequency_sweep, ppu_frequency_sweep

WORKLOADS = ["intsort", "randacc"]
MODES = [PrefetchMode.NONE, PrefetchMode.MANUAL, PrefetchMode.STRIDE]


@pytest.fixture(scope="module")
def config():
    return SystemConfig.scaled()


def tiny_request(workload="intsort", mode=PrefetchMode.MANUAL, config=None, **overrides):
    return SimRequest(
        workload=workload,
        mode=mode,
        scale="tiny",
        config=config if config is not None else SystemConfig.scaled(),
        **overrides,
    )


def tiny_plan(config, workloads=WORKLOADS, modes=MODES):
    return SimPlan(
        tiny_request(w, m, config) for w in workloads for m in modes
    )


class TestSimRequest:
    def test_digest_is_stable_and_content_addressed(self, config):
        first = tiny_request(config=config)
        second = tiny_request(config=config)
        assert first.digest == second.digest
        assert first == second and hash(first) == hash(second)

    def test_digest_distinguishes_every_field(self, config):
        base = tiny_request(config=config)
        assert base.digest != tiny_request(workload="randacc", config=config).digest
        assert base.digest != tiny_request(mode=PrefetchMode.NONE, config=config).digest
        assert base.digest != tiny_request(config=config, seed=7).digest
        assert base.digest != tiny_request(config=SystemConfig.paper()).digest
        assert base.digest != tiny_request(config=config, policy="round-robin").digest

    def test_mode_enum_is_normalised_to_value(self, config):
        request = tiny_request(mode=PrefetchMode.MANUAL, config=config)
        assert request.mode == "manual"
        assert request.prefetch_mode is PrefetchMode.MANUAL

    def test_unknown_mode_and_policy_rejected(self, config):
        with pytest.raises(ValueError):
            tiny_request(mode="warp-drive", config=config)
        with pytest.raises(ConfigurationError):
            tiny_request(config=config, policy="random")


class TestSimPlan:
    def test_deduplicates_identical_requests(self, config):
        request = tiny_request(config=config)
        plan = SimPlan([request, tiny_request(config=config)])
        assert len(plan) == 1
        assert plan.submitted == 2
        assert plan.deduplicated == 1

    def test_add_returns_canonical_request(self, config):
        plan = SimPlan()
        first = plan.add(tiny_request(config=config))
        second = plan.add(tiny_request(config=config))
        assert second is first

    def test_merge_accumulates_counts(self, config):
        left = tiny_plan(config, workloads=["intsort"])
        right = tiny_plan(config)  # superset: shares intsort's points
        merged = left.merge(right)
        assert len(merged) == len(WORKLOADS) * len(MODES)
        assert merged.deduplicated == len(MODES)

    def test_group_requests_by_workload(self, config):
        plan = tiny_plan(config)
        groups = group_requests(list(plan))
        assert len(groups) == len(WORKLOADS)
        for group in groups:
            assert len({request.workload_key for request in group}) == 1


class TestExecution:
    def test_serial_and_parallel_results_are_bit_identical(self, config):
        plan = tiny_plan(config)
        serial = SimEngine(runner=SerialRunner()).run(plan)
        parallel = SimEngine(runner=MultiprocessRunner(workers=2)).run(plan)
        assert parallel.stats.runner == "multiprocess"
        assert len(serial) == len(plan) and len(parallel) == len(plan)
        for request in plan:
            assert serial[request].as_dict() == parallel[request].as_dict()

    def test_single_workload_sweep_is_chunked_and_identical(self, config):
        # A one-workload plan (the Figure 9(b) shape) must still split into
        # several chunks so multiple workers get busy, without changing results.
        plan = SimPlan(
            tiny_request("randacc", PrefetchMode.MANUAL,
                         config.with_prefetcher(ppu_frequency_ghz=f))
            for f in (0.25, 0.5, 1.0, 2.0)
        )
        runner = MultiprocessRunner(workers=2)
        assert len(runner._chunk(list(plan))) == 2
        serial = SimEngine(runner=SerialRunner()).run(plan)
        parallel = SimEngine(runner=runner).run(plan)
        for request in plan:
            assert serial[request].as_dict() == parallel[request].as_dict()

    def test_single_chunk_fallback_reuses_prebuilt_workloads(self, config, monkeypatch):
        from repro.trace_store import replay as replay_module
        from repro.workloads import build_workload

        prebuilt = {"intsort": build_workload("intsort", scale="tiny")}

        def _refuse_rebuild(name, **kwargs):
            raise AssertionError(f"workload {name!r} was rebuilt despite being pre-built")

        monkeypatch.setattr(replay_module, "build_workload", _refuse_rebuild)
        runner = MultiprocessRunner(workers=4, workloads=prebuilt)
        requests = [tiny_request("intsort", PrefetchMode.NONE, config)]
        assert len(runner._chunk(requests)) == 1  # forces the serial fallback
        executed = runner.run(requests)
        assert len(executed) == 1
        digest, result, failure = executed[0]
        assert digest == requests[0].digest
        assert failure is None
        assert result is not None and result.cycles > 0

    def test_unavailable_mode_is_skipped_not_raised(self, config):
        request = tiny_request("pagerank", PrefetchMode.SOFTWARE, config)
        batch = SimEngine().run(SimPlan([request]))
        assert batch.get(request) is None
        assert request.digest in batch.skipped
        assert batch.stats.unavailable == 1

    def test_memo_shares_results_across_runs(self, config):
        engine = SimEngine()
        plan = tiny_plan(config, workloads=["intsort"])
        first = engine.run(plan)
        second = engine.run(tiny_plan(config))  # superset of the first plan
        assert first.stats.executed == len(MODES)
        assert second.stats.memo_hits == len(MODES)
        assert second.stats.executed == len(MODES)  # only randacc's points
        for request in plan:
            assert second[request].as_dict() == first[request].as_dict()


class TestSharedMemoryShipping:
    """Warm trace columns travel to workers via shared memory, not pickles."""

    def test_share_and_attach_roundtrip(self):
        from repro.sim.engine import runner as runner_module

        key = ("intsort", "tiny", 42)
        data = b"RTRC" + bytes(range(64))
        refs_by_key, segments = runner_module._share_artifacts({key: {"plain": data}})
        try:
            ref = refs_by_key[key]["plain"]
            assert ref[0] == "shm" and ref[2] == len(data)
            encoded, attached = runner_module._attach_encoded(refs_by_key[key])
            assert bytes(encoded["plain"]) == data
            encoded.clear()
            for view, segment in attached:
                view.release()
                segment.close()
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_without_shared_memory_bytes_ship_inline(self, monkeypatch):
        from repro.sim.engine import runner as runner_module

        monkeypatch.setattr(runner_module, "_shared_memory", None)
        key = ("intsort", "tiny", 42)
        data = b"RTRC-payload"
        refs_by_key, segments = runner_module._share_artifacts({key: {"plain": data}})
        assert segments == []
        assert refs_by_key[key]["plain"] == ("bytes", data)
        encoded, attached = runner_module._attach_encoded(refs_by_key[key])
        assert encoded == {"plain": data}
        assert attached == []

    def test_missing_segment_is_dropped_not_fatal(self):
        from repro.sim.engine import runner as runner_module

        encoded, attached = runner_module._attach_encoded(
            {"plain": ("shm", "psm_does_not_exist_anymore", 16)}
        )
        assert encoded == {} and attached == []

    def test_workers_never_reencode_warm_traces(self, config, tmp_path, monkeypatch):
        from repro.trace_store import TraceStore

        monkeypatch.setenv("REPRO_TRACE_STORE", str(tmp_path))
        plan = tiny_plan(config, modes=[PrefetchMode.NONE, PrefetchMode.STRIDE])
        # Warm the store once, serially.
        warm = SimEngine(runner=SerialRunner(trace_store=TraceStore(tmp_path))).run(plan)
        assert warm.stats.trace_built > 0
        # A parallel run over the warm store must ship every trace to the
        # workers (shared memory when available, pickled bytes otherwise)
        # and re-emit none of them.
        runner = MultiprocessRunner(workers=2, trace_store=TraceStore(tmp_path))
        parallel = SimEngine(runner=runner).run(plan)
        assert parallel.stats.trace_built == 0
        assert parallel.stats.trace_hits == warm.stats.trace_built
        for request in plan:
            assert parallel[request].as_dict() == warm[request].as_dict()


class TestResultCache:
    def test_warm_cache_executes_nothing_and_matches_cold_run(self, config, tmp_path):
        plan = tiny_plan(config)
        cold = SimEngine(cache=ResultCache(tmp_path)).run(plan)
        warm = SimEngine(cache=ResultCache(tmp_path)).run(plan)
        assert cold.stats.executed == len(plan)
        assert warm.stats.executed == 0
        assert warm.stats.cache_hits == len(plan)
        for request in plan:
            assert warm[request].as_dict() == cold[request].as_dict()

    def test_unavailability_tombstone_is_cached(self, config, tmp_path):
        request = tiny_request("pagerank", PrefetchMode.SOFTWARE, config)
        SimEngine(cache=ResultCache(tmp_path)).run(SimPlan([request]))
        cache = ResultCache(tmp_path)
        assert cache.get(request.digest) is UNAVAILABLE
        warm = SimEngine(cache=cache).run(SimPlan([request]))
        assert warm.stats.executed == 0
        assert request.digest in warm.skipped

    def test_corrupt_entry_is_a_miss(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        request = tiny_request(config=config)
        (tmp_path / f"{request.digest}.json").write_text("{not json")
        assert cache.get(request.digest) is None

    @pytest.mark.parametrize(
        "payload",
        [
            '{"result": {"workload": "intsort"}}',        # missing fields -> KeyError
            '{"result": {"workload": "intsort", "mode": "none", "cycles": "NaNish", '
            '"instructions": 1, "hierarchy": 3}}',        # wrong shapes
            '{"result": null}',                           # TypeError
            '["not", "a", "mapping"]',                    # AttributeError on .get
        ],
    )
    def test_schema_drifted_entry_is_a_miss_not_an_error(self, config, tmp_path, payload):
        cache = ResultCache(tmp_path)
        request = tiny_request(config=config)
        (tmp_path / f"{request.digest}.json").write_text(payload)
        assert cache.get(request.digest) is None

    def test_write_sweeps_orphaned_tmp_files_of_dead_writers(self, config, tmp_path):
        import os

        dead_pid = 2 ** 22 + 12345  # beyond any default pid_max
        orphan = tmp_path / f"deadbeef.tmp.{dead_pid}"
        orphan.write_text("{partial")
        own = tmp_path / f"cafef00d.tmp.{os.getpid()}"
        own.write_text("{in-progress")
        not_a_pid = tmp_path / "feedface.tmp.backup"
        not_a_pid.write_text("{}")
        cache = ResultCache(tmp_path)
        request = tiny_request(config=config)
        cache.put(request, SimEngine().simulate(request))
        assert not orphan.exists()          # dead writer's leftover removed
        assert own.exists()                 # live process's file untouched
        assert not_a_pid.exists()           # non-pid suffixes left alone

    def test_roundtrip_preserves_result_exactly(self, config, tmp_path):
        request = tiny_request(config=config)
        result = SimEngine().simulate(request)
        cache = ResultCache(tmp_path)
        cache.put(request, result)
        loaded = cache.get(request.digest)
        assert isinstance(loaded, SimulationResult)
        assert loaded.as_dict() == result.as_dict()
        assert loaded.cycles == result.cycles
        assert loaded.instructions == result.instructions
        # The stored file is self-describing.
        data = json.loads((tmp_path / f"{request.digest}.json").read_text())
        assert data["request"]["workload"] == "intsort"

    def test_clear(self, config, tmp_path):
        cache = ResultCache(tmp_path)
        request = tiny_request(config=config)
        cache.put(request, SimEngine().simulate(request))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestComparisonOnEngine:
    def test_figure7_simulates_each_unique_point_exactly_once(self, config):
        engine = SimEngine()
        run_figure7(workloads=WORKLOADS, config=config, scale="tiny", engine=engine)
        plan = comparison_plan(WORKLOADS, FIGURE7_MODES, config=config, scale="tiny")
        assert engine.stats.executed == len(plan)
        # A second figure over the same engine re-simulates nothing.
        run_figure7(workloads=WORKLOADS, config=config, scale="tiny", engine=engine)
        assert engine.stats.executed == len(plan)
        assert engine.stats.memo_hits == len(plan)

    def test_run_comparison_matches_legacy_serial_path(self, config):
        legacy = run_comparison(WORKLOADS, MODES, config=config, scale="tiny")
        engine = SimEngine(runner=MultiprocessRunner(workers=2))
        parallel = run_comparison(WORKLOADS, MODES, config=config, scale="tiny", engine=engine)
        assert legacy.workloads == parallel.workloads
        for name in WORKLOADS:
            for mode in MODES:
                left = legacy.result(name, mode)
                right = parallel.result(name, mode)
                assert (left is None) == (right is None)
                if left is not None:
                    assert left.as_dict() == right.as_dict()

    def test_duplicate_add_raises(self, config):
        comparison = ComparisonResult()
        result = SimEngine().simulate(tiny_request(config=config))
        comparison.add(result)
        with pytest.raises(DuplicateResultError):
            comparison.add(result)
        comparison.add(result, replace=True)  # explicit replacement still allowed

    def test_duplicate_baseline_raises(self, config):
        comparison = ComparisonResult()
        result = SimEngine().simulate(tiny_request(mode=PrefetchMode.NONE, config=config))
        comparison.add(result)
        with pytest.raises(DuplicateResultError):
            comparison.add(result)


class TestSweepsOnEngine:
    def test_both_sweeps_accept_baseline_and_share_engine_reference(self, config):
        engine = SimEngine()
        baseline = engine.simulate(
            tiny_request("randacc", PrefetchMode.NONE, config)
        )
        executed_before = engine.stats.executed
        freq = ppu_frequency_sweep(
            "randacc", frequencies=[1.0], config=config, baseline=baseline,
            engine=engine, scale="tiny",
        )
        counts = ppu_count_frequency_sweep(
            "randacc", counts=[12], frequencies=[1.0], config=config,
            baseline=baseline, engine=engine, scale="tiny",
        )
        # With a baseline supplied, neither sweep re-simulates the reference,
        # and the (12 PPU, 1 GHz) point deduplicates with the frequency sweep.
        assert engine.stats.executed == executed_before + 1
        assert freq[1.0] == counts[(12, 1.0)]

    def test_count_sweep_baseline_dedup_without_explicit_baseline(self, config):
        engine = SimEngine()
        ppu_frequency_sweep("randacc", frequencies=[1.0], config=config,
                            engine=engine, scale="tiny")
        executed = engine.stats.executed  # baseline + one point
        assert executed == 2
        ppu_count_frequency_sweep("randacc", counts=[12], frequencies=[2.0],
                                  config=config, engine=engine, scale="tiny")
        # The no-prefetch reference came from the memo, not a re-simulation.
        assert engine.stats.executed == executed + 1
