"""Compiler-derived manual kernels: bit-identical to the hand-written ones.

The loop-IR → manual-kernel pipeline (``repro.compiler.pipeline``) promises
that, for every workload declaring ``derives_manual``, the derived
configuration is *behaviourally indistinguishable* from the hand-written
one: the same kernel instruction streams in the same order, the same filter
ranges, streams, tags and global registers (names included where they leak
into statistics), and therefore the same simulation results.  This module
pins that promise three ways:

* structurally — the two configurations compare equal shape-for-shape;
* differentially — hypothesis drives position-aligned kernel pairs through
  the interpreter on randomised contexts and demands identical prefetches,
  instruction counts, abort flags and untouched global registers;
* end-to-end — a full ``manual``/``manual-blocked`` simulation run with
  ``kernel_source="compiled"`` must reproduce the *existing* golden-stats
  fingerprints exactly (derived mode needs no golden entries of its own).

It also audits the registry (no workload may silently fall back from
``compiled`` to hand-written without a declared ``derive_note``) and pins
the kernel-source resolution and request-digest provenance rules.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.programmable.interpreter import KernelContext, default_lookahead, execute_kernel
from repro.sim import PrefetchMode, mode_available, simulate
from repro.sim.engine import SimRequest
from repro.workloads import registry
from repro.workloads.base import (
    KERNEL_SOURCE_ENV_VAR,
    resolve_kernel_source,
)

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "golden_stats.json"

#: Workloads whose manual kernels the pipeline derives (bfs/spmv/unionfind).
DERIVABLE = [name for name in registry.names() if registry.get(name).derives_manual]

_U64 = (1 << 64) - 1


@pytest.fixture(scope="module")
def config():
    return SystemConfig.scaled()


@pytest.fixture(scope="module")
def golden_stats():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


# -------------------------------------------------------------- registry audit


class TestRegistryAudit:
    def test_some_workloads_derive(self):
        assert sorted(DERIVABLE) == ["bfs", "spmv", "unionfind"]

    def test_every_workload_declares_derivation_status(self):
        """No silent fallback: a workload with loop IR either derives its
        manual kernels or says, in its spec, why it cannot."""

        undeclared = [
            spec.name
            for spec in registry.specs()
            if not spec.derives_manual and not spec.derive_note.strip()
        ]
        assert not undeclared, (
            f"workloads neither derive their manual kernels nor declare why: "
            f"{undeclared}"
        )

    def test_derivable_workloads_actually_derive(self, tiny_workloads):
        for name in DERIVABLE:
            configuration = tiny_workloads.get(name).derived_manual_configuration()
            assert configuration.kernels, name

    def test_non_derivable_workload_fails_loudly_when_forced(self, tiny_workloads):
        workload = tiny_workloads.get("pagerank")
        with pytest.raises(WorkloadError, match="derived no manual kernels"):
            workload.manual_configuration_for("compiled")


# ------------------------------------------------------ structural equivalence


def _shape(configuration):
    """The behaviour-determining shape of a configuration.

    Kernel/range/tag/global *names* — and the kernel dictionary's insertion
    order — do not reach any statistic: ranges and tags reference kernels by
    name, so a kernel's identity here is its instruction stream, substituted
    in place of each reference.  Stream names do leak (per-stream look-ahead
    statistics are keyed by them) and are compared verbatim, as are the
    ordered global values, tag numbers and range bounds/flags.
    """

    def body(kernel_name):
        if kernel_name is None:
            return None
        return tuple(configuration.kernel(kernel_name).instructions)

    return {
        "kernels": sorted(
            repr(tuple(program.instructions))
            for program in configuration.kernels.values()
        ),
        "ranges": [
            (
                entry.base,
                entry.end,
                body(entry.load_kernel),
                body(entry.prefetch_kernel),
                entry.stream,
                entry.time_iterations,
                entry.chain_start,
                entry.chain_end,
            )
            for entry in configuration.ranges
        ],
        "streams": sorted(
            (stream.index, stream.name, stream.default_distance)
            for stream in configuration.streams.values()
        ),
        "globals": list(configuration.global_values()),
        "tags": sorted(
            (tag.tag, body(tag.kernel), tag.stream, tag.chain_end)
            for tag in configuration.tags.values()
        ),
        "config_instructions": configuration.config_instruction_count(),
    }


class TestStructuralEquivalence:
    @pytest.mark.parametrize("name", DERIVABLE)
    def test_derived_configuration_matches_hand_written(self, name, tiny_workloads):
        workload = tiny_workloads.get(name)
        hand = _shape(workload.manual_configuration())
        derived = _shape(workload.derived_manual_configuration())
        for key in hand:
            assert derived[key] == hand[key], f"{name}: {key} diverged"

    @pytest.mark.parametrize("name", DERIVABLE)
    def test_derived_configuration_validates(self, name, tiny_workloads):
        tiny_workloads.get(name).derived_manual_configuration().validate()


# ------------------------------------------------------------- differential


def _contexts(global_values):
    """Randomised kernel contexts over the workload's real global registers."""

    return st.builds(
        KernelContext,
        vaddr=st.integers(min_value=0, max_value=1 << 36).map(lambda v: v * 8),
        line_base=st.just(0),
        line_words=st.one_of(
            st.none(),
            st.lists(
                st.integers(min_value=0, max_value=_U64), min_size=8, max_size=8
            ).map(tuple),
        ),
        global_registers=st.just(list(global_values)),
        lookahead=st.sampled_from(
            [default_lookahead, lambda stream: (stream * 5 + 2) % 64]
        ),
    )


def _aligned_kernel_pairs():
    """Kernel pairs aligned by *trigger*, not by registration order.

    Two kernels correspond when the same event dispatches them: the load
    (or prefetch) kernel of the i-th filter range, and the kernel of tag
    number k.  Every kernel is reachable through one of those references,
    so this covers both configurations completely.
    """

    from repro.workloads import build_workload

    pairs = []
    for name in DERIVABLE:
        workload = build_workload(name, scale="tiny")
        hand = workload.manual_configuration()
        derived = workload.derived_manual_configuration()
        globals_ = tuple(hand.global_values())
        workload_pairs = []

        for index, (h_range, d_range) in enumerate(zip(hand.ranges, derived.ranges)):
            for role in ("load_kernel", "prefetch_kernel"):
                h_name = getattr(h_range, role)
                d_name = getattr(d_range, role)
                assert (h_name is None) == (d_name is None), (name, index, role)
                if h_name is not None:
                    workload_pairs.append(
                        (
                            f"{name}/range{index}.{role}",
                            hand.kernel(h_name),
                            derived.kernel(d_name),
                            globals_,
                        )
                    )
        assert sorted(hand.tags) == sorted(derived.tags), name
        for tag in hand.tags:
            workload_pairs.append(
                (
                    f"{name}/tag{tag}",
                    hand.kernel(hand.tags[tag].kernel),
                    derived.kernel(derived.tags[tag].kernel),
                    globals_,
                )
            )
        # Every kernel of both configurations is reachable from a range or
        # a tag; anything unreferenced would escape the differential.
        assert {p.name for _, p, _, _ in workload_pairs} == set(hand.kernels), name
        assert {p.name for _, _, p, _ in workload_pairs} == set(derived.kernels), name
        pairs.extend(workload_pairs)
    return pairs


_PAIRS = _aligned_kernel_pairs()


@st.composite
def _pair_and_context(draw):
    label, hand, derived, global_values = draw(st.sampled_from(_PAIRS))
    context = draw(_contexts(global_values))
    return label, hand, derived, context


class TestDifferential:
    @settings(max_examples=80, deadline=None)
    @given(case=_pair_and_context())
    def test_hand_and_derived_kernels_bit_identical(self, case):
        trigger, hand, derived, context = case
        globals_before = list(context.global_registers)
        hand_result = execute_kernel(hand, context)
        derived_result = execute_kernel(derived, context)
        label = f"{trigger} ({hand.name} vs {derived.name})"
        assert derived_result.prefetches == hand_result.prefetches, label
        assert (
            derived_result.instructions_executed == hand_result.instructions_executed
        ), label
        assert derived_result.aborted == hand_result.aborted, label
        assert list(context.global_registers) == globals_before, label


# ----------------------------------------------------------------- end-to-end


class TestDerivedGoldenStats:
    """A compiled-kernel run reproduces the hand-written golden fingerprints."""

    @pytest.mark.parametrize("name", DERIVABLE)
    @pytest.mark.parametrize(
        "mode", [PrefetchMode.MANUAL, PrefetchMode.MANUAL_BLOCKED]
    )
    def test_compiled_run_matches_existing_golden_entry(
        self, name, mode, tiny_workloads, config, golden_stats
    ):
        workload = tiny_workloads.get(name)
        if not mode_available(workload, mode):
            pytest.skip(f"{name}: {mode.value} unavailable")
        result = simulate(workload, mode, config, kernel_source="compiled")
        measured = json.loads(json.dumps(result.as_dict()))
        assert measured == golden_stats[f"{name}/{mode.value}"], (
            f"{name}/{mode.value}: compiled kernels diverged from the "
            f"hand-written golden fingerprint"
        )


# ----------------------------------------------------------------- resolution


class TestKernelSourceResolution:
    def test_explicit_wins_over_env(self):
        with mock.patch.dict(os.environ, {KERNEL_SOURCE_ENV_VAR: "compiled"}):
            assert resolve_kernel_source("hand", derivable=True) == "hand"

    def test_env_wins_over_default(self):
        with mock.patch.dict(os.environ, {KERNEL_SOURCE_ENV_VAR: "compiled"}):
            assert resolve_kernel_source(None, default="hand", derivable=True) == "compiled"

    def test_default_applies_without_env(self):
        with mock.patch.dict(os.environ):
            os.environ.pop(KERNEL_SOURCE_ENV_VAR, None)
            assert resolve_kernel_source(None, default="compiled", derivable=True) == "compiled"
            assert resolve_kernel_source(None, derivable=True) == "hand"

    def test_env_compiled_falls_back_to_hand_when_not_derivable(self):
        with mock.patch.dict(os.environ, {KERNEL_SOURCE_ENV_VAR: "compiled"}):
            assert resolve_kernel_source(None, derivable=False) == "hand"
            assert registry.resolve_kernel_source("pagerank") == "hand"
            assert registry.resolve_kernel_source("bfs") == "compiled"

    def test_explicit_compiled_passes_through_for_non_derivable(self):
        # Explicit requests fail loudly later instead of silently degrading.
        assert resolve_kernel_source("compiled", derivable=False) == "compiled"

    def test_invalid_values_raise(self):
        with pytest.raises(WorkloadError):
            resolve_kernel_source("jit", derivable=True)
        with mock.patch.dict(os.environ, {KERNEL_SOURCE_ENV_VAR: "jit"}):
            with pytest.raises(WorkloadError):
                resolve_kernel_source(None, derivable=True)

    def test_forced_compiled_simulation_fails_loudly(self, tiny_workloads, config):
        workload = tiny_workloads.get("pagerank")
        with pytest.raises(WorkloadError, match="derived no manual kernels"):
            simulate(workload, PrefetchMode.MANUAL, config, kernel_source="compiled")


# ----------------------------------------------------------- digest provenance


class TestDigestProvenance:
    def test_compiled_and_hand_requests_never_alias(self):
        hand = SimRequest(workload="bfs", mode="manual", kernel_source="hand")
        compiled = SimRequest(workload="bfs", mode="manual", kernel_source="compiled")
        assert hand.kernel_source == "hand"
        assert compiled.kernel_source == "compiled"
        assert hand.digest != compiled.digest
        assert hand.describe()["kernel_source"] == "hand"
        assert compiled.describe()["kernel_source"] == "compiled"

    def test_manual_requests_normalise_the_effective_source(self):
        with mock.patch.dict(os.environ, {KERNEL_SOURCE_ENV_VAR: "compiled"}):
            request = SimRequest(workload="bfs", mode="manual")
            assert request.kernel_source == "compiled"
        with mock.patch.dict(os.environ):
            os.environ.pop(KERNEL_SOURCE_ENV_VAR, None)
            default = SimRequest(workload="bfs", mode="manual")
            assert default.kernel_source == "hand"
        explicit = SimRequest(workload="bfs", mode="manual", kernel_source="compiled")
        with mock.patch.dict(os.environ, {KERNEL_SOURCE_ENV_VAR: "compiled"}):
            via_env = SimRequest(workload="bfs", mode="manual")
        assert via_env.digest == explicit.digest

    def test_non_manual_modes_are_insensitive_to_kernel_source(self):
        with mock.patch.dict(os.environ):
            os.environ.pop(KERNEL_SOURCE_ENV_VAR, None)
            plain = SimRequest(workload="bfs", mode="stride")
        with mock.patch.dict(os.environ, {KERNEL_SOURCE_ENV_VAR: "compiled"}):
            under_env = SimRequest(workload="bfs", mode="stride")
        assert plain.kernel_source is None and under_env.kernel_source is None
        assert plain.digest == under_env.digest

    def test_non_derivable_manual_requests_normalise_env_to_hand(self):
        with mock.patch.dict(os.environ, {KERNEL_SOURCE_ENV_VAR: "compiled"}):
            request = SimRequest(workload="pagerank", mode="manual")
        assert request.kernel_source == "hand"

    def test_explicit_compiled_survives_normalisation_for_non_derivable(self):
        # The digest records the forced source; execution fails loudly later.
        request = SimRequest(workload="pagerank", mode="manual", kernel_source="compiled")
        assert request.kernel_source == "compiled"
