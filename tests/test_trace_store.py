"""Tests for the trace artifact tier (repro.trace_store + tools/trace_store.py).

The load-bearing guarantees:

* array-backing and the binary store encode/decode are *bit-exact* round
  trips for arbitrary valid op sequences (hypothesis property tests);
* truncated/corrupted/foreign store files read as misses, never as errors
  or wrong traces;
* replaying from artifacts — the engine's warm-store path — produces
  simulation results bit-identical to the full-build path;
* failed requests are counted and labelled instead of silently dropped.
"""

import os
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.cpu.trace import OpKind, Trace, TraceBuilder, TraceOp
from repro.errors import TraceStoreError, WorkloadError
from repro.sim import (
    MultiprocessRunner,
    PrefetchMode,
    ResultCache,
    SerialRunner,
    SimEngine,
    SimPlan,
    SimRequest,
)
from repro.sim.system import simulate
from repro.trace_store import (
    TRACE_STORE_ENV,
    GroupResolver,
    ReplayWorkload,
    TraceArtifact,
    TraceStore,
    decode_artifact,
    default_trace_store,
    default_trace_store_dir,
    encode_artifact,
    trace_digest,
    variants_needed,
)

# --------------------------------------------------------------- strategies


@st.composite
def trace_op_lists(draw):
    """Random valid op sequences: every dependence points at an earlier op."""

    n = draw(st.integers(min_value=0, max_value=40))
    ops = []
    for index in range(n):
        kind = draw(st.sampled_from(list(OpKind)))
        addr = draw(st.integers(min_value=0, max_value=2**59)) * 8  # stays in int64
        count = draw(st.integers(min_value=1, max_value=9)) if kind == OpKind.COMPUTE else 1
        if index:
            deps = tuple(
                draw(
                    st.lists(
                        st.integers(min_value=0, max_value=index - 1),
                        max_size=4,
                        unique=True,
                    )
                )
            )
        else:
            deps = ()
        ops.append(TraceOp(kind, addr=addr, count=count, deps=deps))
    return ops


def _columns_equal(left: Trace, right: Trace) -> bool:
    return all(list(a) == list(b) for a, b in zip(left.columns(), right.columns()))


def _artifact(trace: Trace, **overrides) -> TraceArtifact:
    fields = dict(
        workload="synthetic",
        variant="plain",
        scale="tiny",
        seed=7,
        supports_software=True,
        regions=(),
        trace=trace,
    )
    fields.update(overrides)
    return TraceArtifact(**fields)


# ------------------------------------------------------------ array backing


class TestArrayBacking:
    @given(trace_op_lists())
    @settings(max_examples=60, deadline=None)
    def test_ops_survive_array_backing_bit_exactly(self, ops):
        trace = Trace(ops)
        assert trace.ops == ops
        assert [trace[i] for i in range(len(ops))] == ops
        trace.validate()
        assert trace.instruction_count() == sum(op.count for op in ops)
        for kind in OpKind:
            assert trace.count_kind(kind) == sum(1 for op in ops if op.kind == kind)

    @given(trace_op_lists())
    @settings(max_examples=40, deadline=None)
    def test_builder_and_constructor_agree(self, ops):
        # The builder has no CONFIG emitter (no workload records raw config
        # ops); fold them onto COMPUTE so both paths see the same stream.
        ops = [
            TraceOp(OpKind.COMPUTE, addr=op.addr, count=op.count, deps=op.deps)
            if op.kind == OpKind.CONFIG
            else op
            for op in ops
        ]
        tb = TraceBuilder()
        for op in ops:
            if op.kind == OpKind.LOAD:
                tb.load(op.addr, deps=op.deps)
            elif op.kind == OpKind.STORE:
                tb.store(op.addr, deps=op.deps)
            elif op.kind == OpKind.SOFTWARE_PREFETCH:
                tb.software_prefetch(op.addr, deps=op.deps)
            elif op.kind == OpKind.BRANCH:
                tb.branch(deps=op.deps)
            else:
                tb.compute(op.count, deps=op.deps)
        built = tb.build()
        normalised = [
            # The builder zeroes addresses of non-memory ops and fixes
            # count=1 for non-compute ops — mirror that for comparison.
            TraceOp(
                op.kind,
                addr=op.addr if op.kind in (OpKind.LOAD, OpKind.STORE, OpKind.SOFTWARE_PREFETCH) else 0,
                count=op.count if op.kind == OpKind.COMPUTE else 1,
                deps=op.deps,
            )
            for op in ops
        ]
        assert built.ops == normalised

    def test_columns_are_flat_arrays(self):
        tb = TraceBuilder()
        a = tb.load(0x1000)
        tb.compute(3, deps=[a])
        trace = tb.build()
        kinds, addrs, counts, dep_offsets, dep_values = trace.columns()
        assert list(kinds) == [int(OpKind.LOAD), int(OpKind.COMPUTE)]
        assert list(dep_offsets) == [0, 0, 1]
        assert list(dep_values) == [0]
        assert trace.nbytes() > 0
        assert trace.deps_of(1) == (0,)

    def test_per_trace_memory_at_most_quarter_of_object_form(self, tiny_workloads):
        trace = tiny_workloads.get("randacc").trace("plain")
        object_bytes = 0
        for op in trace:  # materialise the old per-op object representation
            object_bytes += sys.getsizeof(op) + sys.getsizeof(op.__dict__)
            object_bytes += sys.getsizeof(op.deps) + sum(sys.getsizeof(d) for d in op.deps)
            object_bytes += sys.getsizeof(op.addr) + sys.getsizeof(op.count)
            object_bytes += 8  # the list slot that held the op
        assert trace.nbytes() * 4 <= object_bytes


# ------------------------------------------------------- encode/decode/store


class TestEncodeDecode:
    @given(trace_op_lists())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_is_bit_exact(self, ops):
        trace = Trace(ops)
        artifact = _artifact(trace)
        decoded = decode_artifact(encode_artifact(artifact, digest="d" * 64))
        assert decoded.workload == artifact.workload
        assert decoded.variant == artifact.variant
        assert decoded.scale == artifact.scale
        assert decoded.seed == artifact.seed
        assert decoded.supports_software == artifact.supports_software
        assert _columns_equal(decoded.trace, trace)
        assert decoded.trace.ops == ops

    @given(trace_op_lists(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_truncation_anywhere_is_detected(self, ops, data):
        encoded = encode_artifact(_artifact(Trace(ops)))
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        with pytest.raises(TraceStoreError):
            decode_artifact(encoded[:cut])

    @given(trace_op_lists(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_bit_corruption_anywhere_is_detected(self, ops, data):
        encoded = bytearray(encode_artifact(_artifact(Trace(ops))))
        position = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        encoded[position] ^= 1 << bit
        with pytest.raises(TraceStoreError):
            decode_artifact(bytes(encoded))

    def test_garbage_and_bad_magic_are_detected(self):
        for payload in (b"", b"junk", b"NOPE" + b"\x00" * 64, os.urandom(256)):
            with pytest.raises(TraceStoreError):
                decode_artifact(payload)


class TestTraceStore:
    def _sample_artifact(self) -> TraceArtifact:
        tb = TraceBuilder()
        a = tb.load(0x1000)
        tb.store(0x2000, deps=[a])
        return _artifact(tb.build())

    def test_put_get_roundtrip(self, tmp_path):
        store = TraceStore(tmp_path)
        artifact = self._sample_artifact()
        digest = store.put(artifact)
        assert digest == trace_digest("synthetic", "plain", "tiny", 7)
        assert digest in store and len(store) == 1
        loaded = store.get(digest)
        assert loaded is not None and _columns_equal(loaded.trace, artifact.trace)

    @pytest.mark.parametrize("spoil", ["truncate", "flip", "empty", "garbage"])
    def test_corrupted_entries_read_as_misses(self, tmp_path, spoil):
        store = TraceStore(tmp_path)
        digest = store.put(self._sample_artifact())
        path = store._path(digest)
        data = path.read_bytes()
        if spoil == "truncate":
            path.write_bytes(data[: len(data) // 2])
        elif spoil == "flip":
            corrupted = bytearray(data)
            corrupted[len(corrupted) // 3] ^= 0x40
            path.write_bytes(bytes(corrupted))
        elif spoil == "empty":
            path.write_bytes(b"")
        else:
            path.write_bytes(b"\x00" * 100)
        assert store.get(digest) is None

    def test_digest_distinguishes_identity_fields(self):
        base = trace_digest("intsort", "plain", "tiny", 42)
        assert base != trace_digest("randacc", "plain", "tiny", 42)
        assert base != trace_digest("intsort", "software", "tiny", 42)
        assert base != trace_digest("intsort", "plain", "small", 42)
        assert base != trace_digest("intsort", "plain", "tiny", 7)

    def test_atomic_write_sweeps_dead_writers(self, tmp_path):
        dead_pid = 2**22 + 54321
        orphan = tmp_path / f"deadbeef.tmp.{dead_pid}"
        orphan.write_text("partial")
        own = tmp_path / f"cafef00d.tmp.{os.getpid()}"
        own.write_text("in-progress")
        store = TraceStore(tmp_path)
        store.put(self._sample_artifact())
        assert not orphan.exists()
        assert own.exists()

    def test_prune_and_clear(self, tmp_path):
        store = TraceStore(tmp_path)
        store.put(self._sample_artifact())
        assert store.prune(older_than_seconds=3600) == 0
        assert store.prune(older_than_seconds=0) == 1
        store.put(self._sample_artifact())
        assert store.clear() == 1 and len(store) == 0

    def test_env_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TRACE_STORE_ENV, "off")
        assert default_trace_store_dir() is None
        assert default_trace_store() is None
        monkeypatch.setenv(TRACE_STORE_ENV, str(tmp_path / "store"))
        assert default_trace_store_dir() == tmp_path / "store"
        assert default_trace_store() is not None
        monkeypatch.delenv(TRACE_STORE_ENV)
        assert default_trace_store_dir() is not None  # per-user default

    def test_variants_needed(self):
        assert variants_needed([PrefetchMode.NONE, PrefetchMode.MANUAL]) == ("plain",)
        assert variants_needed([PrefetchMode.SOFTWARE]) == ("software",)
        assert variants_needed(
            [PrefetchMode.SOFTWARE, PrefetchMode.STRIDE]
        ) == ("plain", "software")


# ----------------------------------------------------------- replay parity


class TestReplayParity:
    @pytest.mark.parametrize("mode", [
        PrefetchMode.NONE,
        PrefetchMode.STRIDE,
        PrefetchMode.GHB_LARGE,
        PrefetchMode.SOFTWARE,
    ])
    def test_replay_workload_bit_identical(self, tmp_path, tiny_workloads, mode):
        workload = tiny_workloads.get("hj8")
        store = TraceStore(tmp_path)
        for variant in ("plain", "software"):
            store.put(TraceArtifact.from_workload(workload, variant))
        resolver = GroupResolver("hj8", "tiny", 42, store=store)
        replay = resolver.workload_for_mode(mode)
        assert isinstance(replay, ReplayWorkload)
        config = SystemConfig.scaled()
        assert simulate(replay, mode, config).as_dict() == \
            simulate(workload, mode, config).as_dict()

    def test_replay_knows_software_unavailability_without_build(self, tmp_path, tiny_workloads):
        workload = tiny_workloads.get("pagerank")
        store = TraceStore(tmp_path)
        store.put(TraceArtifact.from_workload(workload, "plain"))
        resolver = GroupResolver("pagerank", "tiny", 42, store=store)
        replay = resolver.workload_for_mode(PrefetchMode.SOFTWARE)
        assert isinstance(replay, ReplayWorkload)
        assert not replay.supports_software_prefetch()
        with pytest.raises(WorkloadError):
            replay.trace("software")

    def test_persist_never_builds_to_rediscover_unavailability(
        self, tmp_path, tiny_workloads, monkeypatch
    ):
        from repro.trace_store import replay as replay_module

        workload = tiny_workloads.get("pagerank")  # no software variant
        store = TraceStore(tmp_path)
        store.put(TraceArtifact.from_workload(workload, "plain"))

        def _refuse_build(name, **kwargs):
            raise AssertionError(f"{name!r} was rebuilt just to check availability")

        monkeypatch.setattr(replay_module, "build_workload", _refuse_build)
        resolver = GroupResolver("pagerank", "tiny", 42, store=store)
        resolver.workload_for_mode(PrefetchMode.SOFTWARE)  # replay, no build
        resolver.persist(("plain", "software"))  # must not build either
        assert len(store) == 1

    def test_replay_refuses_programmable_configuration(self, tmp_path, tiny_workloads):
        workload = tiny_workloads.get("intsort")
        store = TraceStore(tmp_path)
        store.put(TraceArtifact.from_workload(workload, "plain"))
        resolver = GroupResolver("intsort", "tiny", 42, store=store)
        replay = resolver.workload_for_mode(PrefetchMode.NONE)
        assert isinstance(replay, ReplayWorkload)
        with pytest.raises(WorkloadError):
            replay.manual_configuration()
        # The resolver never hands a replay to a programmable mode.
        full = resolver.workload_for_mode(PrefetchMode.MANUAL)
        assert not isinstance(full, ReplayWorkload)

    def test_programmable_build_emits_for_itself(self, tmp_path, tiny_workloads):
        # Emission has address-space side effects the kernels read (BFS
        # visited sets, union-find roots), so the full-build path must
        # *not* substitute a stored trace for its own emission.
        workload = tiny_workloads.get("unionfind")
        store = TraceStore(tmp_path)
        store.put(TraceArtifact.from_workload(workload, "plain"))
        resolver = GroupResolver("unionfind", "tiny", 42, store=store)
        full = resolver.workload_for_mode(PrefetchMode.MANUAL)
        assert not isinstance(full, ReplayWorkload)
        assert resolver.stats.hits == 0  # the store is not even consulted
        config = SystemConfig.scaled()
        assert simulate(full, PrefetchMode.MANUAL, config).as_dict() == \
            simulate(workload, PrefetchMode.MANUAL, config).as_dict()


# ------------------------------------------------------ engine integration


def _request(workload="intsort", mode=PrefetchMode.NONE, config=None):
    return SimRequest(
        workload=workload, mode=mode, scale="tiny",
        config=config if config is not None else SystemConfig.scaled(),
    )


class TestEngineIntegration:
    MODES = [PrefetchMode.NONE, PrefetchMode.STRIDE, PrefetchMode.SOFTWARE,
             PrefetchMode.MANUAL]

    def _plan(self, config):
        return SimPlan(
            _request(w, m, config)
            for w in ("intsort", "randacc")
            for m in self.MODES
        )

    def test_disabled_cold_warm_are_bit_identical(self, tmp_path, scaled_config):
        disabled = SimEngine(runner=SerialRunner(trace_store=None)).run(self._plan(scaled_config))
        store_dir = tmp_path / "store"
        cold_engine = SimEngine(runner=SerialRunner(trace_store=TraceStore(store_dir)))
        cold = cold_engine.run(self._plan(scaled_config))
        warm_engine = SimEngine(runner=SerialRunner(trace_store=TraceStore(store_dir)))
        warm = warm_engine.run(self._plan(scaled_config))
        assert cold_engine.stats.trace_built > 0 and cold_engine.stats.trace_hits == 0
        assert warm_engine.stats.trace_hits == cold_engine.stats.trace_stored
        assert warm_engine.stats.trace_built == 0
        for request in self._plan(scaled_config):
            results = [batch.get(request) for batch in (disabled, cold, warm)]
            assert len({r is None for r in results}) == 1
            if results[0] is not None:
                assert results[0].as_dict() == results[1].as_dict() == results[2].as_dict()

    def test_multiprocess_cold_store_persists_from_workers(self, tmp_path, scaled_config):
        # Regression: an *empty* TraceStore is falsy (__len__), and a bare
        # truthiness test once stopped the parent from shipping the store
        # directory to workers — exactly on the cold runs that populate it.
        store_dir = tmp_path / "store"
        engine = SimEngine(
            runner=MultiprocessRunner(workers=2, trace_store=TraceStore(store_dir))
        )
        engine.run(self._plan(scaled_config))
        assert len(TraceStore(store_dir)) > 0
        assert engine.stats.trace_stored > 0

    def test_multiprocess_ships_encoded_columns(self, tmp_path, scaled_config):
        store_dir = tmp_path / "store"
        serial = SimEngine(runner=SerialRunner(trace_store=TraceStore(store_dir)))
        baseline = serial.run(self._plan(scaled_config))
        parallel_engine = SimEngine(
            runner=MultiprocessRunner(workers=2, trace_store=TraceStore(store_dir))
        )
        parallel = parallel_engine.run(self._plan(scaled_config))
        assert parallel_engine.stats.trace_hits > 0
        for request in self._plan(scaled_config):
            left, right = baseline.get(request), parallel.get(request)
            assert (left is None) == (right is None)
            if left is not None:
                assert left.as_dict() == right.as_dict()

    def test_failed_requests_are_counted_and_labelled(self, tmp_path, scaled_config, monkeypatch):
        from repro.sim.engine import runner as runner_module

        def _explode(workload, mode, config, policy=None, kernel_source=None):
            raise WorkloadError("synthetic failure for testing")

        monkeypatch.setattr(runner_module, "simulate", _explode)
        cache = ResultCache(tmp_path / "results")
        engine = SimEngine(runner=SerialRunner(trace_store=None), cache=cache)
        request = _request(config=scaled_config)
        batch = engine.run(SimPlan([request]))
        assert batch.get(request) is None
        assert request.digest in batch.skipped
        assert "synthetic failure" in batch.failures[request.digest]
        assert engine.stats.failed == 1
        assert engine.stats.unavailable == 0
        assert any("synthetic failure" in label for label in engine.stats.failures)
        assert "1 failed" in engine.stats.summary()
        # Failures are never tombstoned: the cache stays empty and a retry
        # (after the fault is gone) executes again.
        assert cache.get(request.digest) is None
        monkeypatch.undo()
        retry = engine.run(SimPlan([request]))
        assert retry.get(request) is not None

    def test_unavailable_requests_keep_no_failure_label(self, scaled_config):
        engine = SimEngine(runner=SerialRunner(trace_store=None))
        request = _request("pagerank", PrefetchMode.SOFTWARE, scaled_config)
        batch = engine.run(SimPlan([request]))
        assert request.digest in batch.skipped
        assert batch.failures == {}
        assert engine.stats.unavailable == 1 and engine.stats.failed == 0

    def test_plan_workload_groups(self, scaled_config):
        plan = self._plan(scaled_config)
        groups = plan.workload_groups()
        assert set(groups) == {("intsort", "tiny", 42), ("randacc", "tiny", 42)}
        assert all(len(group) == len(self.MODES) for group in groups.values())


# ------------------------------------------------------------------- CLI


class TestMaintenanceCli:
    def _cli(self):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "trace_store_cli",
            Path(__file__).resolve().parents[1] / "tools" / "trace_store.py",
        )
        cli = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(cli)
        return cli

    def test_ls_stat_prune_clear(self, tmp_path, tiny_workloads, capsys):
        cli = self._cli()
        store = TraceStore(tmp_path)
        store.put(TraceArtifact.from_workload(tiny_workloads.get("intsort"), "plain"))
        assert cli.main(["--dir", str(tmp_path), "ls"]) == 0
        assert "intsort" in capsys.readouterr().out
        assert cli.main(["--dir", str(tmp_path), "stat"]) == 0
        assert "entries:      1" in capsys.readouterr().out
        assert cli.main(["--dir", str(tmp_path), "prune", "--older-than", "30",
                         "--dry-run"]) == 0
        assert "would remove 0" in capsys.readouterr().out
        assert cli.main(["--dir", str(tmp_path), "prune", "--older-than", "0"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert len(store) == 0
        store.put(TraceArtifact.from_workload(tiny_workloads.get("intsort"), "plain"))
        assert cli.main(["--dir", str(tmp_path), "clear"]) == 0
        assert len(store) == 0
