"""Tests for the compiler passes: analysis, bounds, conversion, pragma, DCE."""

import pytest

from repro.compiler import ir
from repro.compiler.analysis import (
    decompose_prefetch,
    extract_root_distance,
    find_variant_loads,
    is_loop_invariant,
)
from repro.compiler.bounds import infer_bounds
from repro.compiler.convert import convert_software_prefetches
from repro.compiler.dce import prefetch_overhead_instructions, removed_instructions
from repro.compiler.pragma import generate_from_pragma
from repro.errors import CompilationError


def figure4_loop(distance=16, *, with_swpf=True, pragma=True):
    """The paper's Figure 4/5 loop: ``acc += C[B[A[x]]]`` with optional SWPF."""

    a = ir.ArrayDecl("A", "base_A", length_param="N")
    b = ir.ArrayDecl("B", "base_B", length_param="N")
    c = ir.ArrayDecl("C", "base_C", length_param="N")
    loop = ir.Loop("figure4", ir.IndexVar("x"), trip_count_param="N",
                   arrays=[a, b, c], pragma_prefetch=pragma)
    x = loop.indvar
    if with_swpf:
        loop.add(
            ir.SoftwarePrefetchStmt(
                c, ir.Load(b, ir.Load(a, ir.add(x, distance))), name="swpf_C"
            )
        )
    loop.add(ir.LoadStmt(ir.Load(c, ir.Load(b, ir.Load(a, x)))))
    bindings = {"base_A": 0x10000, "base_B": 0x20000, "base_C": 0x30000, "N": 1024}
    return loop, bindings


class TestAnalysis:
    def test_loop_invariance(self):
        loop, _ = figure4_loop()
        assert is_loop_invariant(ir.Constant(4), loop)
        assert is_loop_invariant(ir.Param("base"), loop)
        assert not is_loop_invariant(loop.indvar, loop)
        assert not is_loop_invariant(ir.Load(loop.arrays[0], loop.indvar), loop)
        assert is_loop_invariant(ir.add(ir.Param("a"), 3), loop)

    def test_find_variant_loads_stops_at_first_load(self):
        loop, _ = figure4_loop()
        swpf = loop.software_prefetches()[0]
        loads = find_variant_loads(swpf.index, loop)
        assert len(loads) == 1
        assert loads[0].array.name == "B"

    def test_root_distance_extraction(self):
        indvar = ir.IndexVar("x")
        assert extract_root_distance(indvar, indvar) == 0
        assert extract_root_distance(ir.add(indvar, 8), indvar) == 8
        with pytest.raises(CompilationError):
            extract_root_distance(ir.mul(indvar, 2), indvar)

    def test_decompose_three_level_chain(self):
        loop, _ = figure4_loop(distance=32)
        swpf = loop.software_prefetches()[0]
        chain = decompose_prefetch(loop, swpf.array, swpf.index, "swpf_C")
        assert chain.arrays == ("A", "B", "C")
        assert chain.root_distance == 32
        assert chain.root.is_root

    def test_multiple_loads_per_address_fail(self):
        a = ir.ArrayDecl("A", "base_A", length_param="N")
        b = ir.ArrayDecl("B", "base_B", length_param="N")
        t = ir.ArrayDecl("T", "base_T", length_param="N")
        loop = ir.Loop("bad", ir.IndexVar("i"), trip_count_param="N", arrays=[a, b, t])
        index = ir.add(ir.Load(a, loop.indvar), ir.Load(b, loop.indvar))
        with pytest.raises(CompilationError, match="more than one"):
            decompose_prefetch(loop, t, index, "bad")

    def test_control_dependent_load_fails(self):
        loop, _ = figure4_loop()
        heap = ir.ArrayDecl("heap", "zero", element_bytes=1)
        index = ir.Load(heap, ir.Load(loop.arrays[0], loop.indvar), control_dependent=True)
        with pytest.raises(CompilationError, match="control"):
            decompose_prefetch(loop, loop.arrays[2], index, "bad")

    def test_no_induction_variable_fails(self):
        loop, _ = figure4_loop()
        with pytest.raises(CompilationError, match="induction"):
            decompose_prefetch(loop, loop.arrays[2], ir.Param("p"), "bad")


class TestBounds:
    def test_bounds_from_length_param(self):
        loop, bindings = figure4_loop()
        base, end = infer_bounds(loop.arrays[0], loop, bindings)
        assert (base, end) == (0x10000, 0x10000 + 1024 * 8)

    def test_bounds_from_trip_count_fallback(self):
        array = ir.ArrayDecl("P", "base_P")  # pointer-style: no declared length
        loop = ir.Loop("l", ir.IndexVar("i"), trip_count_param="n", arrays=[array])
        base, end = infer_bounds(array, loop, {"base_P": 0x100, "n": 10})
        assert end == 0x100 + 80

    def test_unbound_base_fails(self):
        loop, _ = figure4_loop()
        with pytest.raises(CompilationError):
            infer_bounds(loop.arrays[0], loop, {})

    def test_no_length_information_fails(self):
        array = ir.ArrayDecl("P", "base_P")
        loop = ir.Loop("l", ir.IndexVar("i"), arrays=[array])
        with pytest.raises(CompilationError):
            infer_bounds(array, loop, {"base_P": 0x100}, allow_trip_count=False)


class TestConversionPass:
    def test_converts_figure4(self):
        loop, bindings = figure4_loop()
        program = convert_software_prefetches(loop, bindings)
        assert program.converted
        assert program.failures == []
        assert len(program.configuration.kernels) == 3
        assert len(program.configuration.ranges) >= 1
        assert program.removed_main_instructions >= 3
        program.configuration.validate()

    def test_generated_kernels_compute_correct_addresses(self):
        from repro.programmable.interpreter import KernelContext, execute_kernel

        loop, bindings = figure4_loop()
        program = convert_software_prefetches(loop, bindings)
        config = program.configuration
        root_range = [r for r in config.ranges if r.load_kernel][0]
        kernel = config.kernel(root_range.load_kernel)
        ctx = KernelContext(
            vaddr=bindings["base_A"] + 5 * 8,
            line_base=bindings["base_A"] + 5 * 8 - ((bindings["base_A"] + 5 * 8) % 64),
            line_words=[0] * 8,
            global_registers=config.global_values(),
            lookahead=lambda s: 16,
        )
        result = execute_kernel(kernel, ctx)
        assert result.prefetch_addresses == [bindings["base_A"] + (5 + 16) * 8]
        assert result.prefetches[0][1] >= 0  # tagged for the follow-on event

    def test_loop_without_prefetches_reports_failure(self):
        loop, bindings = figure4_loop(with_swpf=False)
        program = convert_software_prefetches(loop, bindings)
        assert not program.converted
        assert program.failures

    def test_pointer_chase_prefetch_rejected(self):
        loop, bindings = figure4_loop()
        heap = ir.ArrayDecl("heap", "zero_base", element_bytes=1)
        loop.declare_array(heap)
        loop.add(
            ir.SoftwarePrefetchStmt(
                heap,
                ir.Load(heap, ir.Load(loop.arrays[0], loop.indvar), control_dependent=True),
                name="swpf_list",
            )
        )
        bindings = dict(bindings, zero_base=0)
        program = convert_software_prefetches(loop, bindings)
        assert any("swpf_list" in name for name, _ in program.failures)
        # The convertible prefetch still converts.
        assert program.converted


class TestPragmaPass:
    def test_discovers_indirect_chain_without_swpf(self):
        loop, bindings = figure4_loop(with_swpf=False)
        program = generate_from_pragma(loop, bindings)
        assert program.converted
        assert program.chains[0].arrays == ("A", "B", "C")

    def test_requires_pragma_annotation(self):
        loop, bindings = figure4_loop(pragma=False)
        with pytest.raises(CompilationError):
            generate_from_pragma(loop, bindings)

    def test_duplicate_chains_deduplicated(self):
        a = ir.ArrayDecl("A", "base_A", length_param="N")
        b = ir.ArrayDecl("B", "base_B", length_param="N")
        loop = ir.Loop("dup", ir.IndexVar("i"), trip_count_param="N",
                       arrays=[a, b], pragma_prefetch=True)
        loop.add(ir.LoadStmt(ir.Load(b, ir.Load(a, loop.indvar))))
        loop.add(ir.LoadStmt(ir.Load(b, ir.Load(a, loop.indvar))))
        program = generate_from_pragma(loop, {"base_A": 0x1000, "base_B": 0x2000, "N": 64})
        assert len(program.chains) == 1

    def test_control_dependent_loads_reported_not_converted(self):
        loop, bindings = figure4_loop(with_swpf=False)
        heap = ir.ArrayDecl("heap", "zero_base", element_bytes=1)
        loop.declare_array(heap)
        loop.add(
            ir.LoadStmt(
                ir.Load(heap, ir.Load(loop.arrays[0], loop.indvar), control_dependent=True)
            )
        )
        program = generate_from_pragma(loop, dict(bindings, zero_base=0))
        assert program.failures
        assert all("heap" != chain.arrays[-1] for chain in program.chains)

    def test_strided_only_loop_produces_nothing(self):
        a = ir.ArrayDecl("A", "base_A", length_param="N")
        loop = ir.Loop("strided", ir.IndexVar("i"), trip_count_param="N",
                       arrays=[a], pragma_prefetch=True)
        loop.add(ir.LoadStmt(ir.Load(a, loop.indvar)))
        program = generate_from_pragma(loop, {"base_A": 0x1000, "N": 64})
        assert not program.converted


class TestDCE:
    def test_overhead_counts_loads_and_arithmetic(self):
        loop, _ = figure4_loop()
        swpf = loop.software_prefetches()[0]
        overhead = prefetch_overhead_instructions(swpf)
        # swpf itself + add(x, dist) + two loads (A and B)
        assert overhead == 1 + 1 + 2

    def test_removed_instructions_sums(self):
        loop, _ = figure4_loop()
        assert removed_instructions(loop.software_prefetches()) == prefetch_overhead_instructions(
            loop.software_prefetches()[0]
        )


class TestWorkloadIRIntegration:
    """Every workload's IR must be consumable by both passes without crashing."""

    def test_each_workload_ir_compiles(self, tiny_workloads, each_workload_name):
        workload = tiny_workloads.get(each_workload_name)
        loop, bindings = workload.loop_ir()
        converted = convert_software_prefetches(loop, bindings)
        converted.configuration.validate()
        pragma = generate_from_pragma(loop, bindings)
        pragma.configuration.validate()

    def test_pagerank_has_no_software_prefetches(self, tiny_workloads):
        workload = tiny_workloads.get("pagerank")
        loop, _ = workload.loop_ir()
        assert loop.software_prefetches() == []

    def test_g500_list_conversion_limited_to_head_chain(self, tiny_workloads):
        workload = tiny_workloads.get("g500-list")
        loop, bindings = workload.loop_ir()
        program = convert_software_prefetches(loop, bindings)
        for chain in program.chains:
            assert chain.arrays[-1] in ("heads",)
