"""Shared fixtures for the test suite.

Workload construction (graph generation, hash-table building, trace emission)
is the expensive part of most integration tests, so tiny-scale workloads are
cached per test session.
"""

from __future__ import annotations

import os

import pytest

import repro.trace_store  # noqa: E402  (must precede the env pin below)

# Hermeticity: without an explicit REPRO_TRACE_STORE the runners would fall
# back to the per-user store (~/.cache/repro/trace_store), making test
# behaviour — and which resolution paths execute — depend on global machine
# state, and leaving artifacts behind.  Pin the tier off unless the caller
# opted in (CI runs the suite three ways: off, cold, warm).
os.environ.setdefault(repro.trace_store.TRACE_STORE_ENV, "off")

from repro.config import SystemConfig
from repro.memory.address_space import AddressSpace
from repro.trace_store import (
    TRACE_STORE_ENV,
    TraceArtifact,
    default_trace_store,
    trace_digest,
)
from repro.workloads import build_workload, registry


def _warm_traces_through_store(workload) -> None:
    """Route the workload's traces through the trace store, when enabled.

    With ``REPRO_TRACE_STORE`` set to a directory, every cached workload
    replays *store-decoded* traces: a cold store takes the emit → persist →
    decode path, a warm store takes the read → decode path, so the golden
    fingerprints pin the whole artifact tier bit-for-bit in both states.
    (CI runs the suite three ways: store off, cold, and warm.)  Without the
    variable the suite is hermetic and never touches the tier.

    Emission always runs first, decoded or not: emitting a trace writes the
    workload's results (visited sets, root arrays) into the simulated
    address space, and the programmable modes' kernels read those values —
    the artifact tier replaces the *trace*, never the space side effects.
    """

    store = default_trace_store() if os.environ.get(TRACE_STORE_ENV) else None
    if store is None:
        return
    for variant in ("plain", "software"):
        if variant == "software" and not workload.supports_software_prefetch():
            continue
        workload.trace(variant)  # emit: trace cache + space side effects
        digest = trace_digest(workload.name, variant, workload.scale.name, workload.seed)
        artifact = store.get(digest)
        if artifact is None:
            store.put(TraceArtifact.from_workload(workload, variant))
            artifact = store.get(digest)  # decode round-trip, even when cold
        if artifact is not None:
            workload._traces[variant] = artifact.trace


@pytest.fixture
def scaled_config() -> SystemConfig:
    return SystemConfig.scaled()


@pytest.fixture
def paper_config() -> SystemConfig:
    return SystemConfig.paper()


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace()


class _WorkloadCache:
    """Builds each tiny workload at most once per session."""

    def __init__(self) -> None:
        self._cache = {}

    def get(self, name: str):
        if name not in self._cache:
            workload = build_workload(name, scale="tiny")
            _warm_traces_through_store(workload)
            self._cache[name] = workload
        return self._cache[name]


_CACHE = _WorkloadCache()


@pytest.fixture(scope="session")
def tiny_workloads():
    """Session-cached factory for tiny-scale workloads."""

    return _CACHE


@pytest.fixture(params=registry.paper_names())
def each_workload_name(request) -> str:
    """One parameter per paper (Table 2) workload name."""

    return request.param


@pytest.fixture(params=registry.extended_names())
def each_extended_workload_name(request) -> str:
    """One parameter per off-paper workload name (bfs, spmv, unionfind)."""

    return request.param
