"""Shared fixtures for the test suite.

Workload construction (graph generation, hash-table building, trace emission)
is the expensive part of most integration tests, so tiny-scale workloads are
cached per test session.
"""

from __future__ import annotations

import pytest

from repro.config import SystemConfig
from repro.memory.address_space import AddressSpace
from repro.workloads import build_workload, registry


@pytest.fixture
def scaled_config() -> SystemConfig:
    return SystemConfig.scaled()


@pytest.fixture
def paper_config() -> SystemConfig:
    return SystemConfig.paper()


@pytest.fixture
def space() -> AddressSpace:
    return AddressSpace()


class _WorkloadCache:
    """Builds each tiny workload at most once per session."""

    def __init__(self) -> None:
        self._cache = {}

    def get(self, name: str):
        if name not in self._cache:
            self._cache[name] = build_workload(name, scale="tiny")
        return self._cache[name]


_CACHE = _WorkloadCache()


@pytest.fixture(scope="session")
def tiny_workloads():
    """Session-cached factory for tiny-scale workloads."""

    return _CACHE


@pytest.fixture(params=registry.paper_names())
def each_workload_name(request) -> str:
    """One parameter per paper (Table 2) workload name."""

    return request.param


@pytest.fixture(params=registry.extended_names())
def each_extended_workload_name(request) -> str:
    """One parameter per off-paper workload name (bfs, spmv, unionfind)."""

    return request.param
