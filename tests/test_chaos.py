"""Deterministic chaos tests: kill/resume, hung workers, admission control.

Like ``tests/test_service_faults.py``, synchronisation is via hold-files,
protocol events, and bounded polling of counters the code under test
reports — never via sleeps that assume an ordering.  Each test injects one
failure mode and proves the stack degrades the way ``docs/resilience.md``
promises:

* a sweep killed mid-run resumes from its checkpoint manifest, executing
  only the missing requests with bit-identical results;
* a hung worker is detected by the heartbeat watchdog, killed, and its
  chunk requeued until it succeeds;
* a client over its in-flight quota (or a full queue) gets ``rejected`` +
  ``retry_after`` and completes after backing off, while other clients'
  traffic is unaffected;
* a submission past its deadline fails promptly with a retryable label.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.config import SystemConfig
from repro.service import ServiceClient
from repro.sim.engine import (
    DEADLINE_FAILURE_TEXT,
    MultiprocessRunner,
    ResultCache,
    SerialRunner,
    SimEngine,
    SimPlan,
    SimRequest,
)

from service_utils import SVC_TEST_DIR_ENV, ServerThread, registered_test_workloads
from test_service_faults import read_until, request_for, wait_for_counter


@pytest.fixture
def svc_dir(tmp_path, monkeypatch):
    directory = tmp_path / "svc"
    directory.mkdir()
    monkeypatch.setenv(SVC_TEST_DIR_ENV, str(directory))
    return directory


def intsort_request(seed: int = 42, mode: str = "none") -> SimRequest:
    return SimRequest(
        workload="intsort", mode=mode, scale="tiny", seed=seed,
        config=SystemConfig.scaled(),
    )


# -------------------------------------------------------- kill-9 and resume


class KillAfter(SerialRunner):
    """A serial runner that dies (like ``kill -9``) after N completions.

    The interrupt fires *inside* the completion callback chain — after the
    engine has banked the finished request in the cache and the manifest,
    exactly the durability point a real kill would test.
    """

    def __init__(self, stop_after: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.stop_after = stop_after
        self.completed = 0

    def run(self, requests, *, on_executed=None, deadline=None):
        def tap(batch):
            if on_executed is not None:
                on_executed(batch)
            self.completed += len(batch)
            if self.completed >= self.stop_after:
                raise KeyboardInterrupt("simulated kill -9")

        return super().run(requests, on_executed=tap, deadline=deadline)


class TestKillResume:
    PLAN_POINTS = [("intsort", "none"), ("intsort", "stride"),
                   ("randacc", "none"), ("randacc", "stride")]

    def _plan(self) -> SimPlan:
        config = SystemConfig.scaled()
        return SimPlan(
            SimRequest(workload=w, mode=m, scale="tiny", seed=3, config=config)
            for w, m in self.PLAN_POINTS
        )

    def test_killed_sweep_resumes_exactly_once_bit_identical(self, tmp_path):
        killed = 2
        cache_dir = tmp_path / "cache"
        ckpt_dir = tmp_path / "ckpt"

        # An uninterrupted reference run in separate directories.
        reference = SimEngine(runner=SerialRunner(trace_store=None)).run(self._plan())

        # The doomed run dies after `killed` completions...
        doomed = SimEngine(
            runner=KillAfter(killed, trace_store=None),
            cache=ResultCache(cache_dir),
            checkpoint_dir=ckpt_dir,
        )
        with pytest.raises(KeyboardInterrupt):
            doomed.run(self._plan())

        # ...but everything completed before the kill is already durable.
        survivors = ResultCache(cache_dir)
        banked = [d for d, _ in self._plan().items() if survivors.get(d) is not None]
        assert len(banked) == killed

        # The resume executes only the missing requests, bit-identically.
        resumed = SimEngine(
            runner=SerialRunner(trace_store=None),
            cache=ResultCache(cache_dir),
            checkpoint_dir=ckpt_dir,
            resume=True,
        ).run(self._plan())
        assert resumed.stats.resumed == killed
        assert resumed.stats.executed == len(self.PLAN_POINTS) - killed
        assert len(resumed) == len(reference)
        for digest in reference.results:
            assert resumed[digest].as_dict() == reference[digest].as_dict()

        # A second resume is fully warm: nothing executes at all.
        again = SimEngine(
            runner=SerialRunner(trace_store=None),
            cache=ResultCache(cache_dir),
            checkpoint_dir=ckpt_dir,
            resume=True,
        ).run(self._plan())
        assert again.stats.executed == 0
        assert again.stats.resumed == len(self.PLAN_POINTS)


# ------------------------------------------------------ hung-worker watchdog


class TestHungWorkerWatchdog:
    def test_hung_worker_is_killed_and_chunk_requeued(self, svc_dir):
        hold = svc_dir / "hold-401"
        hold.touch()
        with registered_test_workloads():
            # The gated request blocks without ever heartbeating; three
            # intsort requests form further chunks so the watchdog path
            # (not the serial fallback) executes.
            requests = [request_for("svcgate", seed=401)] + [
                intsort_request(seed=s) for s in (11, 12, 13)
            ]
            runner = MultiprocessRunner(
                workers=2, trace_store=None, hang_timeout=0.3, max_attempts=10,
            )
            executed: list = []
            failure: list[BaseException] = []

            def drive() -> None:
                try:
                    executed.extend(runner.run(requests))
                except BaseException as error:  # pragma: no cover
                    failure.append(error)

            thread = threading.Thread(target=drive)
            thread.start()
            try:
                # Bounded poll of the watchdog's own counter: the gated
                # worker must be declared hung within the configured
                # timeout.  Only then release the gate so the requeued
                # attempt can succeed.
                deadline = time.monotonic() + 60.0
                while runner.resilience.hung_killed < 1:
                    assert time.monotonic() < deadline, "watchdog never fired"
                    assert not failure, failure
                    time.sleep(0.01)
                hold.unlink()
            finally:
                thread.join(timeout=120.0)
            assert not thread.is_alive(), "runner never completed"
            assert failure == []

            assert runner.resilience.hung_killed >= 1
            assert runner.resilience.requeues >= 1
            outcomes = {digest: (result, fail) for digest, result, fail in executed}
            assert len(outcomes) == len(requests)
            assert all(fail is None for _, fail in outcomes.values())

            # The survivors are bit-identical to a serial run of the same set.
            serial = SerialRunner(trace_store=None).run(requests)
            for digest, result, _ in serial:
                assert outcomes[digest][0].as_dict() == result.as_dict()


# ------------------------------------------------------------- deadlines


class TestDeadlines:
    def test_expired_engine_deadline_fails_requests_with_retryable_label(self):
        engine = SimEngine(runner=SerialRunner(trace_store=None), deadline=0.0)
        batch = engine.run(SimPlan([intsort_request(seed=21),
                                    intsort_request(seed=22)]))
        assert batch.stats.executed == 2
        assert batch.stats.failed == 2
        assert batch.stats.expired == 2
        assert len(batch) == 0
        assert all(DEADLINE_FAILURE_TEXT in label for label in batch.stats.failures)

    def test_expired_deadline_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        engine = SimEngine(
            runner=SerialRunner(trace_store=None), cache=cache, deadline=0.0
        )
        request = intsort_request(seed=23)
        engine.run(SimPlan([request]))
        assert cache.get(request.digest) is None

        # The same cache serves a later, unbounded run normally.
        retry = SimEngine(runner=SerialRunner(trace_store=None), cache=cache)
        batch = retry.run(SimPlan([request]))
        assert batch.stats.executed == 1 and not batch.failures

    def test_service_submission_deadline_expires_gated_work(self, svc_dir):
        hold = svc_dir / "hold-431"
        hold.touch()
        with registered_test_workloads():
            with ServerThread(workers=1) as daemon:
                with ServiceClient(daemon.address, timeout=120.0) as client:
                    sid = client.submit_nowait(
                        [request_for("svcgate", seed=431)], deadline=0.2
                    )
                    read_until(client, "accepted", sid)
                    # The gate never opens, so only the deadline can finish
                    # this submission — `done` arriving at all proves expiry.
                    done = read_until(client, "done", sid)
                    (outcome,) = done["outcomes"]
                    assert outcome["status"] == "failed"
                    assert DEADLINE_FAILURE_TEXT in outcome["failure"]
                counters = wait_for_counter(daemon.address, "expired", 1)
                assert counters["expired"] >= 1
                # Release the gate so the daemon can drain and stop.
                hold.unlink()


# ------------------------------------------------------- admission control


class TestAdmissionControl:
    def test_quota_rejection_backoff_and_recovery(self, svc_dir):
        hold = svc_dir / "hold-411"
        hold.touch()
        with registered_test_workloads():
            with ServerThread(workers=2, max_inflight=1, retry_after=0.01) as daemon:
                greedy = ServiceClient(daemon.address, timeout=120.0)
                bystander = ServiceClient(daemon.address, timeout=120.0)

                # The greedy client's gated request occupies its whole quota.
                sid1 = greedy.submit_nowait([request_for("svcgate", seed=411)])
                read_until(greedy, "accepted", sid1)
                read_until(greedy, "chunk-started", sid1)

                # Its next submission is refused — with a backoff hint, and
                # without anything being scheduled.
                sid2 = greedy.submit_nowait([intsort_request(seed=31)])
                rejection = read_until(greedy, "rejected", sid2)
                assert rejection["reason"] == "quota"
                assert rejection["retry_after"] > 0

                # Another client is unaffected: zero outstanding work means
                # always admitted, and the second worker serves it while the
                # gated chunk still blocks the first.
                done_b = bystander.submit([intsort_request(seed=32)])
                (outcome_b,) = done_b["outcomes"]
                assert outcome_b["status"] == "ok"

                # Once the gate opens the greedy client drains...
                hold.unlink()
                done1 = read_until(greedy, "done", sid1)
                assert done1["outcomes"][0]["status"] == "ok"

                # ...and its resubmission is admitted normally.
                sid3 = greedy.submit_nowait([intsort_request(seed=31)])
                read_until(greedy, "accepted", sid3)
                done3 = read_until(greedy, "done", sid3)
                assert done3["outcomes"][0]["status"] == "ok"

                counters = wait_for_counter(daemon.address, "rejected_quota", 1)
                assert counters["rejected_quota"] >= 1
                greedy.close()
                bystander.close()

    def test_queue_backpressure_client_retries_after_hint(self, svc_dir):
        hold = svc_dir / "hold-421"
        hold.touch()
        with registered_test_workloads():
            with ServerThread(workers=1, max_queued_chunks=1,
                              retry_after=0.01) as daemon:
                filler = ServiceClient(daemon.address, timeout=120.0)
                # One gated chunk occupies the only worker; one more fills
                # the queue to its limit.  Both are guaranteed stuck while
                # the hold-file exists, so the rejection below is
                # deterministic, not a race.
                sid1 = filler.submit_nowait([request_for("svcgate", seed=421)])
                read_until(filler, "accepted", sid1)
                read_until(filler, "chunk-started", sid1)
                sid2 = filler.submit_nowait([intsort_request(seed=33)])
                read_until(filler, "accepted", sid2)

                latecomer = ServiceClient(daemon.address, timeout=120.0)
                sleeps: list[float] = []
                real_sleep = latecomer._sleep
                latecomer._sleep = lambda s: (sleeps.append(s), real_sleep(s))
                rejected_events: list[dict] = []

                def on_event(event: dict) -> None:
                    if event.get("type") == "rejected":
                        rejected_events.append(event)
                        # Open the gate from inside the event stream: the
                        # client backs off and resubmits into a draining
                        # queue, eventually getting admitted.
                        hold.unlink(missing_ok=True)

                done = latecomer.submit([intsort_request(seed=34)], on_event=on_event)
                (outcome,) = done["outcomes"]
                assert outcome["status"] == "ok"
                assert rejected_events and rejected_events[0]["reason"] == "queue"
                # Every backoff honored at least the server's hint.
                assert sleeps and all(s >= 0.01 for s in sleeps)

                done2 = read_until(filler, "done", sid2)
                assert done2["outcomes"][0]["status"] == "ok"
                counters = wait_for_counter(daemon.address, "rejected_queue", 1)
                assert counters["rejected_queue"] >= 1
                filler.close()
                latecomer.close()
