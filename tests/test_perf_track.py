"""Tests for the performance-trajectory subsystem (repro.perf + tools/perf_track.py)."""

import json

import pytest

from repro.perf import (
    BenchRecord,
    BenchSnapshot,
    append_trajectory_point,
    diff_snapshots,
    environment_matches,
    format_diff,
    format_snapshot,
    latest_snapshot_path,
    load_snapshot,
    next_snapshot_path,
    run_benchmarks,
    save_snapshot,
    snapshot_paths,
)
from repro.sim.modes import PrefetchMode


def _snapshot(walls, label=""):
    return BenchSnapshot(
        scale="tiny",
        repeats=1,
        label=label,
        records=[
            BenchRecord(
                workload=workload,
                mode=mode,
                wall_seconds=wall,
                ops=1000,
                instructions=2000,
                cycles=5000.0,
            )
            for (workload, mode), wall in walls.items()
        ],
    )


class TestSnapshotModel:
    def test_roundtrip_through_json(self, tmp_path):
        snapshot = _snapshot({("randacc", "manual"): 0.25}, label="baseline")
        path = tmp_path / "BENCH_0.json"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.as_dict() == snapshot.as_dict()
        assert loaded.records[0].ops_per_second == pytest.approx(4000.0)

    def test_record_for_and_representative(self):
        snapshot = _snapshot({("randacc", "manual"): 0.1, ("intsort", "none"): 0.2})
        assert snapshot.record_for("intsort", "none").wall_seconds == 0.2
        assert snapshot.record_for("intsort", "manual") is None
        assert snapshot.figure7_representative.workload == "randacc"
        assert snapshot.total_wall_seconds == pytest.approx(0.3)

    def test_trajectory_numbering(self, tmp_path):
        assert latest_snapshot_path(tmp_path) is None
        assert next_snapshot_path(tmp_path).name == "BENCH_0.json"
        for name in ("BENCH_0.json", "BENCH_2.json", "BENCH_10.json", "BENCH_x.json"):
            (tmp_path / name).write_text("{}")
        assert [p.name for p in snapshot_paths(tmp_path)] == [
            "BENCH_0.json", "BENCH_2.json", "BENCH_10.json",
        ]
        assert latest_snapshot_path(tmp_path).name == "BENCH_10.json"
        assert next_snapshot_path(tmp_path).name == "BENCH_11.json"


class TestDiff:
    def test_speedup_and_totals(self):
        old = _snapshot({("randacc", "manual"): 0.3, ("intsort", "none"): 0.1})
        new = _snapshot({("randacc", "manual"): 0.1, ("intsort", "none"): 0.1})
        diff = diff_snapshots(old, new)
        assert len(diff.diffs) == 2
        assert diff.figure7_speedup == pytest.approx(3.0)
        assert diff.total_speedup == pytest.approx(2.0)
        assert diff.worst_regression() == pytest.approx(0.0)
        assert "figure7 representative" in format_diff(diff)

    def test_mode_speedups_aggregate_per_mode(self):
        old = _snapshot({
            ("randacc", "manual"): 0.40, ("intsort", "manual"): 0.20,
            ("randacc", "none"): 0.10, ("intsort", "none"): 0.10,
        })
        new = _snapshot({
            ("randacc", "manual"): 0.20, ("intsort", "manual"): 0.10,
            ("randacc", "none"): 0.10, ("intsort", "none"): 0.10,
        })
        diff = diff_snapshots(old, new)
        modes = diff.mode_speedups()
        assert set(modes) == {"manual", "none"}
        assert modes["manual"].old_wall == pytest.approx(0.60)
        assert modes["manual"].new_wall == pytest.approx(0.30)
        assert modes["manual"].speedup == pytest.approx(2.0)
        assert modes["none"].speedup == pytest.approx(1.0)
        rendered = format_diff(diff)
        assert "mode manual" in rendered
        assert "mode none" in rendered
        # The total line is still present (the regression gate keys off it).
        assert "total:" in rendered

    def test_regression_detection(self):
        old = _snapshot({("intsort", "none"): 0.10})
        new = _snapshot({("intsort", "none"): 0.15})
        diff = diff_snapshots(old, new)
        assert diff.worst_regression() == pytest.approx(0.5)

    def test_non_overlapping_points_are_skipped(self):
        old = _snapshot({("intsort", "none"): 0.1})
        new = _snapshot({("randacc", "manual"): 0.1})
        diff = diff_snapshots(old, new)
        assert diff.diffs == []
        assert "no overlapping" in format_diff(diff)

    def test_different_scales_are_not_comparable(self):
        old = _snapshot({("intsort", "none"): 0.1})
        new = _snapshot({("intsort", "none"): 0.2})
        new.scale = "small"
        diff = diff_snapshots(old, new)
        assert diff.diffs == []
        assert "not comparable" in diff.note
        assert "not comparable" in format_diff(diff)

    def test_environment_match(self):
        old = _snapshot({("intsort", "none"): 0.1})
        new = _snapshot({("intsort", "none"): 0.1})
        assert environment_matches(old, new)
        new.python = old.python = "3.11.7"
        new.python = "3.11.9"
        assert environment_matches(old, new)  # micro releases are comparable
        new.python = "3.12.1"
        assert not environment_matches(old, new)
        new.python = old.python
        new.machine = "riscv128"
        assert not environment_matches(old, new)


class TestTrajectoryHelpers:
    def test_latest_snapshot_path_filters_by_scale(self, tmp_path):
        tiny = _snapshot({("intsort", "none"): 0.1})
        small = _snapshot({("intsort", "none"): 0.4})
        small.scale = "small"
        save_snapshot(tiny, tmp_path / "BENCH_0.json")
        save_snapshot(small, tmp_path / "BENCH_1.json")
        assert latest_snapshot_path(tmp_path).name == "BENCH_1.json"
        assert latest_snapshot_path(tmp_path, scale="tiny").name == "BENCH_0.json"
        assert latest_snapshot_path(tmp_path, scale="default") is None

    def test_append_trajectory_point_diffs_against_same_scale(self, tmp_path):
        first, diff, path = append_trajectory_point(
            tmp_path, scale="tiny", workloads=["intsort"],
            modes=[PrefetchMode.NONE], repeats=1,
        )
        assert diff is None and path.name == "BENCH_0.json"
        # An interleaved point at another scale must not become the baseline.
        other = _snapshot({("intsort", "none"): 123.0})
        other.scale = "small"
        save_snapshot(other, tmp_path / "BENCH_1.json")
        second, diff, path = append_trajectory_point(
            tmp_path, scale="tiny", workloads=["intsort"],
            modes=[PrefetchMode.NONE], repeats=1,
        )
        assert path.name == "BENCH_2.json"
        assert diff is not None and not diff.note
        assert diff.diffs[0].old_wall == first.records[0].wall_seconds


class TestBuildPhase:
    def _snapshot_with_build(self, points):
        return BenchSnapshot(
            scale="tiny",
            repeats=1,
            records=[
                BenchRecord(
                    workload=workload, mode=mode, wall_seconds=wall,
                    ops=1000, instructions=2000, cycles=5000.0,
                    build_seconds=build,
                )
                for (workload, mode), (wall, build) in points.items()
            ],
        )

    def test_build_seconds_survives_json_and_defaults_to_zero(self, tmp_path):
        snapshot = self._snapshot_with_build({("randacc", "manual"): (0.2, 0.05)})
        path = tmp_path / "BENCH_0.json"
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.records[0].build_seconds == pytest.approx(0.05)
        assert loaded.total_build_seconds == pytest.approx(0.05)
        assert loaded.suite_seconds == pytest.approx(0.25)
        # Schema-1 records (no build_seconds key) load as 0.0.
        legacy = BenchRecord.from_dict({
            "workload": "a", "mode": "none", "wall_seconds": 0.1,
            "ops": 1, "instructions": 1, "cycles": 1.0,
        })
        assert legacy.build_seconds == 0.0

    def test_diff_reports_which_phase_moved(self):
        old = self._snapshot_with_build({
            ("randacc", "manual"): (0.20, 0.30), ("intsort", "none"): (0.10, 0.10),
        })
        new = self._snapshot_with_build({
            ("randacc", "manual"): (0.20, 0.01), ("intsort", "none"): (0.10, 0.01),
        })
        diff = diff_snapshots(old, new)
        assert diff.has_build_phase
        assert diff.total_speedup == pytest.approx(1.0)  # sim did not move
        assert diff.total_old_build == pytest.approx(0.40)
        assert diff.total_new_build == pytest.approx(0.02)
        assert diff.suite_speedup == pytest.approx(0.70 / 0.32)
        rendered = format_diff(diff)
        assert "phase build" in rendered
        assert "suite" in rendered
        # The gate's total line is untouched by the breakdown.
        assert "total: 300.0 ms → 300.0 ms" in rendered

    def test_breakdown_absent_for_legacy_snapshots(self):
        old = _snapshot({("intsort", "none"): 0.1})
        new = _snapshot({("intsort", "none"): 0.1})
        diff = diff_snapshots(old, new)
        assert not diff.has_build_phase
        assert "phase build" not in format_diff(diff)

    def test_run_benchmarks_measures_build_through_the_store(self, tmp_path):
        from repro.trace_store import TraceStore

        store = TraceStore(tmp_path / "store")
        cold = run_benchmarks(
            workloads=["intsort"], modes=[PrefetchMode.NONE, PrefetchMode.MANUAL],
            scale="tiny", repeats=1, trace_store=store,
        )
        assert len(store) == 1  # the plain trace was emitted once and persisted
        assert all(record.build_seconds >= 0 for record in cold.records)
        assert cold.records[0].build_seconds > 0  # first mode pays the build
        warm = run_benchmarks(
            workloads=["intsort"], modes=[PrefetchMode.NONE, PrefetchMode.MANUAL],
            scale="tiny", repeats=1, trace_store=TraceStore(tmp_path / "store"),
        )
        assert len(store) == 1
        assert [r.cycles for r in warm.records] == [r.cycles for r in cold.records]
        assert "build (ms)" in format_snapshot(warm)


class TestRunBenchmarks:
    def test_records_real_measurements(self):
        snapshot = run_benchmarks(
            workloads=["intsort"],
            modes=[PrefetchMode.NONE, PrefetchMode.MANUAL],
            scale="tiny",
            repeats=1,
        )
        assert {record.mode for record in snapshot.records} == {"none", "manual"}
        for record in snapshot.records:
            assert record.wall_seconds > 0
            assert record.ops > 0
            assert record.cycles > 0
            assert record.ops_per_second > 0
        assert "intsort" in format_snapshot(snapshot)

    def test_unavailable_modes_are_skipped(self):
        snapshot = run_benchmarks(
            workloads=["pagerank"],
            modes=[PrefetchMode.SOFTWARE, PrefetchMode.NONE],
            scale="tiny",
            repeats=1,
        )
        assert [record.mode for record in snapshot.records] == ["none"]


class TestCommandLine:
    def test_cli_writes_trajectory_and_gates(self, tmp_path, capsys):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "perf_track_cli", Path(__file__).resolve().parents[1] / "tools" / "perf_track.py"
        )
        cli = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(cli)

        argv = ["--scale", "tiny", "--workloads", "intsort", "--modes", "none",
                "--repeats", "1", "--dir", str(tmp_path)]
        assert cli.main(argv) == 0
        assert (tmp_path / "BENCH_0.json").exists()

        # Second run diffs against BENCH_0 and appends BENCH_1.
        assert cli.main(argv + ["--fail-threshold", "100.0"]) == 0
        assert (tmp_path / "BENCH_1.json").exists()
        out = capsys.readouterr().out
        assert "Compared against" in out

        # An absurdly slow committed baseline trips the regression gate.
        fast = load_snapshot(tmp_path / "BENCH_1.json")
        slow = _snapshot(
            {(r.workload, r.mode): r.wall_seconds * 1e-6 for r in fast.records}
        )
        save_snapshot(slow, tmp_path / "BENCH_2.json")
        code = cli.main(argv + ["--fail-threshold", "0.30", "--no-write",
                                "--output", str(tmp_path / "ci.json")])
        assert code == 1
        assert (tmp_path / "ci.json").exists()
        assert json.loads((tmp_path / "ci.json").read_text())["scale"] == "tiny"
