"""Tests for the evaluation harness (figures, tables, report rendering)."""

import pytest

from repro.config import SystemConfig
from repro.eval.figure7 import format_figure7, run_figure7
from repro.eval.figure8 import format_figure8, run_figure8
from repro.eval.figure9 import format_figure9, run_figure9
from repro.eval.figure10 import format_figure10, run_figure10
from repro.eval.figure11 import format_figure11, run_figure11
from repro.eval.memtraffic import format_memtraffic, run_memtraffic
from repro.eval.report import render_markdown, run_report
from repro.eval.table1 import format_table1, run_table1
from repro.eval.table2 import format_table2, run_table2
from repro.sim import PrefetchMode, run_comparison
from repro.sim.modes import FIGURE7_MODES

WORKLOAD_SUBSET = ["intsort", "randacc"]


@pytest.fixture(scope="module")
def comparison():
    """One shared tiny comparison reused by the figure tests."""

    modes = list(FIGURE7_MODES) + [PrefetchMode.MANUAL_BLOCKED]
    return run_comparison(WORKLOAD_SUBSET, modes, config=SystemConfig.scaled(), scale="tiny")


class TestTables:
    def test_table1_groups(self):
        table = run_table1()
        assert set(table) == {"Main Core", "Memory & OS", "Prefetcher"}
        text = format_table1(table)
        assert "PPUs" in text and "L1 cache" in text

    def test_table1_reflects_config(self):
        table = run_table1(SystemConfig.paper())
        assert "32 KB" in table["Memory & OS"]["L1 cache"]

    def test_table2_rows(self):
        rows = run_table2(workloads=WORKLOAD_SUBSET)
        assert len(rows) == 2
        assert rows[0]["name"] == "intsort"
        assert "Stride-indirect" in format_table2(rows)


class TestFigures:
    def test_figure7_speedups_and_overhead(self, comparison):
        data = run_figure7(workloads=WORKLOAD_SUBSET, comparison=comparison)
        assert set(data.speedups) == set(WORKLOAD_SUBSET)
        manual = data.speedups["intsort"][PrefetchMode.MANUAL.value]
        assert manual is not None and manual > 1.0
        assert data.geomean(PrefetchMode.MANUAL) > 1.0
        assert "intsort" in data.software_overhead
        text = format_figure7(data)
        assert "geomean" in text and "intsort" in text

    def test_figure8_rates(self, comparison):
        data = run_figure8(workloads=WORKLOAD_SUBSET, comparison=comparison)
        for name in WORKLOAD_SUBSET:
            assert 0 <= data.utilisation[name] <= 1
            before, after = data.hit_rates[name]
            assert after >= before
        assert "utilisation" in format_figure8(data)

    def test_figure10_activity(self, comparison):
        data = run_figure10(workloads=WORKLOAD_SUBSET, comparison=comparison)
        summary = data.summary("intsort")
        assert summary["max"] >= summary["median"] >= summary["min"]
        assert data.unused_ppus("intsort") >= 0
        assert "median" in format_figure10(data)

    def test_figure11_blocked_vs_events(self, comparison):
        data = run_figure11(workloads=WORKLOAD_SUBSET, comparison=comparison)
        for name in WORKLOAD_SUBSET:
            assert data.events[name] >= data.blocked[name] * 0.8
        assert "events" in format_figure11(data)

    def test_memtraffic(self, comparison):
        data = run_memtraffic(workloads=WORKLOAD_SUBSET, comparison=comparison)
        for name in WORKLOAD_SUBSET:
            assert data.extra[name] < 0.5
        assert "%" in format_memtraffic(data)

    def test_figure9_sweeps_small(self):
        data = run_figure9(
            workloads=["randacc"],
            scale="tiny",
            frequencies=[0.5, 1.0],
            counts=[3, 12],
            count_sweep_workload="randacc",
        )
        assert set(data.frequency_sweeps["randacc"]) == {0.5, 1.0}
        assert (3, 1.0) in data.count_sweep
        assert "GHz" in format_figure9(data)


class TestReport:
    def test_run_report_and_render(self):
        report = run_report(
            workloads=WORKLOAD_SUBSET, scale="tiny", include_figure9=False
        )
        markdown = render_markdown(report)
        assert "Figure 7" in markdown
        assert "intsort" in markdown
        console = report.format_console()
        assert "Table 1" in console
        assert report.figure7.geomean(PrefetchMode.MANUAL) > 0
