"""High-availability fabric tests: failover, health, replication, degrade.

All synchronisation is deterministic: protocol events, hold files and
bounded polling of *state the daemons report* — never sleeps that assume an
ordering.  The chaos tier SIGKILLs a real spawned daemon mid-plan at an
event-synchronised instant (a streamed ``outcome`` proves partial progress
landed; a hold file proves the rest cannot have), so the failover path is
exercised with work provably in flight.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.config import SystemConfig
from repro.cli import status_main
from repro.errors import ServiceError
from repro.eval.report import build_engine
from repro.service import (
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceEngine,
    format_health_table,
    parse_endpoints,
    probe_endpoint,
    spawn_local_daemon,
)
from repro.sim.engine import ResultCache, SerialRunner, SimEngine, SimPlan, SimRequest

from service_utils import SVC_TEST_DIR_ENV, ServerThread, registered_test_workloads

#: A loopback port nothing listens on in the test environment.
DEAD = "127.0.0.1:1"


@pytest.fixture
def svc_dir(tmp_path, monkeypatch):
    directory = tmp_path / "svc"
    directory.mkdir()
    monkeypatch.setenv(SVC_TEST_DIR_ENV, str(directory))
    return directory


def request_for(workload: str, seed: int, mode: str = "none") -> SimRequest:
    return SimRequest(
        workload=workload, mode=mode, scale="tiny", seed=seed,
        config=SystemConfig.scaled(),
    )


def small_plan(workload: str = "intsort", seeds=(1, 2)) -> SimPlan:
    return SimPlan([request_for(workload, seed) for seed in seeds])


# ------------------------------------------------------------ endpoint lists


def test_parse_endpoints_orders_dedupes_and_validates():
    assert parse_endpoints("a:1, b:2 ,a:1,") == ["a:1", "b:2"]
    assert parse_endpoints(["unix:/tmp/x.sock"]) == ["unix:/tmp/x.sock"]
    with pytest.raises(ServiceError):
        parse_endpoints("not-an-address")
    with pytest.raises(ServiceError):
        parse_endpoints(",,")


# ------------------------------------------------------------ health probes


def test_health_probe_reports_daemon_readiness():
    with ServerThread(workers=1) as daemon:
        report = probe_endpoint(daemon.address)
        assert report.ok and report.ready
        assert report.status == "ok"
        assert report.protocol == PROTOCOL_VERSION
        assert report.workers == 1
        assert report.pool_generation == 0
        assert report.uptime is not None and report.uptime >= 0.0
        table = format_health_table([report])
        assert daemon.address in table and "ENDPOINT" in table


def test_health_probe_unreachable_endpoint_never_raises():
    report = probe_endpoint(DEAD, timeout=5.0)
    assert not report.ok and not report.ready
    assert report.error and "connect" in report.error
    table = format_health_table([report])
    assert "unreachable" in table


def test_status_cli_exit_codes(capsys):
    with ServerThread(workers=1) as daemon:
        assert status_main(daemon.address) == 0
        assert status_main(f"{daemon.address},{DEAD}") == 1
    assert status_main("garbage") == 2
    out = capsys.readouterr().out
    assert "ENDPOINT" in out and "unreachable" in out


def test_draining_daemon_reports_not_ready_on_live_connection(svc_dir):
    """A draining daemon answers ``health`` with ``draining`` to connected
    clients (new connections are refused outright — the listener closes)."""

    hold = svc_dir / "hold-601"
    hold.touch()
    with registered_test_workloads():
        daemon = ServerThread(workers=1)
        with daemon:
            with ServiceClient(daemon.address, timeout=120.0) as client:
                client.submit_nowait([request_for("svcgate", seed=601)])
                while True:
                    if client.read_event().get("type") == "chunk-started":
                        break
                # Work is gated in flight: ask for a drain, which cannot
                # complete until the hold lifts.  The drain flag flips on
                # the daemon's loop; poll the reported state (bounded).
                daemon.loop.call_soon_threadsafe(daemon.server.request_shutdown)
                deadline = time.monotonic() + 30.0
                while client.health()["status"] != "draining":
                    assert time.monotonic() < deadline, "drain flag never reported"
                    time.sleep(0.01)
                # And a fresh probe sees the closed listener: not ready.
                assert not probe_endpoint(daemon.address, timeout=5.0).ready
                hold.unlink()
                while True:
                    if client.read_event().get("type") == "done":
                        break


# ---------------------------------------------------- protocol negotiation


def test_v3_client_degrades_cleanly_against_v2_server():
    """Regression: a new client against an old daemon is plain v2."""

    with ServerThread(workers=1, protocol_version=2) as daemon:
        with ServiceClient(daemon.address, timeout=120.0) as client:
            assert client.server_protocol == 2
            # v3-only requests are refused with an error, never a hang.
            with pytest.raises(ServiceError):
                client.health()
        # The probe degrades to reachability-only.
        report = probe_endpoint(daemon.address)
        assert report.ok and report.ready
        assert report.status == "legacy" and report.protocol == 2
        # Plans still run (no streaming requested, no health gating).
        engine = ServiceEngine(daemon.address, timeout=120.0)
        batch = engine.run(small_plan())
        assert len(batch.results) == 2 and not batch.failures
        assert batch.stats.executed == 2
        engine.close()


# --------------------------------------------------------- peer replication


def test_peer_pull_through_replicates_instead_of_executing():
    with ServerThread(workers=1) as upstream:
        warm_engine = ServiceEngine(upstream.address, timeout=120.0)
        cold = warm_engine.run(small_plan())
        assert cold.stats.executed == 2
        warm_engine.close()

        with ServerThread(workers=1, peers=[upstream.address]) as downstream:
            engine = ServiceEngine(downstream.address, timeout=120.0)
            warm = engine.run(small_plan())
            engine.close()
            assert warm.stats.peer_hits == 2, warm.stats
            assert warm.stats.executed == 0, "peer hits must not re-execute"
            assert {d: r.as_dict() for d, r in warm.results.items()} == {
                d: r.as_dict() for d, r in cold.results.items()
            }, "replicated results must be bit-identical"
            assert downstream.server.stats.peer_hits == 2
            assert downstream.server.stats.executed == 0
        # The upstream answered fetches out of its memo, executing nothing new.
        assert upstream.server.stats.executed == 2


def test_dead_peer_is_just_a_miss():
    with ServerThread(workers=1, peers=[DEAD], peer_timeout=5.0) as daemon:
        engine = ServiceEngine(daemon.address, timeout=120.0)
        batch = engine.run(small_plan())
        engine.close()
        assert len(batch.results) == 2 and not batch.failures
        assert batch.stats.executed == 2, "a dead peer must not block execution"
        assert daemon.server.stats.peer_errors >= 1
        assert daemon.server.stats.peer_hits == 0


# ----------------------------------------------------------------- failover


def test_failover_skips_dead_primary():
    with ServerThread(workers=1) as secondary:
        engine = ServiceEngine(f"{DEAD},{secondary.address}", timeout=120.0)
        batch = engine.run(small_plan())
        engine.close()
        assert len(batch.results) == 2 and not batch.failures
        assert batch.stats.failed_over >= 1
        assert engine.breakers[DEAD].failures >= 1
        assert engine.breakers[secondary.address].state == "closed"


def test_failover_away_from_draining_primary(svc_dir):
    """Daemon drain: new plans are resubmitted to the next healthy endpoint."""

    hold = svc_dir / "hold-611"
    hold.touch()
    with registered_test_workloads():
        primary = ServerThread(workers=1)
        with primary, ServerThread(workers=1) as secondary:
            with ServiceClient(primary.address, timeout=120.0) as gate_client:
                gate_client.submit_nowait([request_for("svcgate", seed=611)])
                while True:
                    if gate_client.read_event().get("type") == "chunk-started":
                        break
                primary.loop.call_soon_threadsafe(primary.server.request_shutdown)
                deadline = time.monotonic() + 30.0
                while gate_client.health()["status"] != "draining":
                    assert time.monotonic() < deadline, "drain flag never reported"
                    time.sleep(0.01)

                engine = ServiceEngine(
                    f"{primary.address},{secondary.address}", timeout=120.0
                )
                batch = engine.run(small_plan())
                engine.close()
                assert len(batch.results) == 2 and not batch.failures
                assert batch.stats.failed_over == 1
                assert secondary.server.stats.executed == 2
                assert primary.server.stats.executed == 0

                hold.unlink()
                while True:
                    if gate_client.read_event().get("type") == "done":
                        break


def test_sigkill_mid_plan_fails_over_with_banked_partial_progress(svc_dir):
    """Chaos: SIGKILL the primary daemon with one outcome streamed and one
    provably gated; the client completes bit-identically on the secondary,
    and executed counts prove the banked result never ran twice."""

    hold = svc_dir / "hold-702"
    hold.touch()
    requests = [request_for("svcgate", seed=701), request_for("svcgate", seed=702)]
    with registered_test_workloads():
        daemon_env = {
            "REPRO_WORKLOAD_PLUGINS": "svc_plugin",
            "PYTHONPATH": os.path.dirname(os.path.abspath(__file__)),
            SVC_TEST_DIR_ENV: os.environ[SVC_TEST_DIR_ENV],
        }
        with spawn_local_daemon(
            workers=1, extra_args=["--chunk-size", "1"], env=daemon_env
        ) as (process, primary_address):
            with ServerThread(workers=1) as secondary:
                killed = {"pid": None}

                def kill_after_first_outcome(event):
                    # Seed 701's streamed outcome proves partial progress
                    # landed; seed 702 is still gated behind the hold file,
                    # so the kill is mid-plan by construction.
                    if event.get("type") == "outcome" and killed["pid"] is None:
                        killed["pid"] = process.pid
                        os.kill(process.pid, signal.SIGKILL)
                        hold.unlink()

                engine = ServiceEngine(
                    f"{primary_address},{secondary.address}", timeout=120.0
                )
                batch = engine.run(
                    SimPlan(list(requests)), on_event=kill_after_first_outcome
                )
                engine.close()

                assert killed["pid"] is not None, "the streamed outcome must arrive"
                assert not batch.failures and len(batch.results) == 2
                # The hold is gone now, so the bit-identical reference can
                # run locally (it would have blocked on it beforehand).
                local = SimEngine(runner=SerialRunner()).run(SimPlan(list(requests)))
                assert {d: r.as_dict() for d, r in batch.results.items()} == {
                    d: r.as_dict() for d, r in local.results.items()
                }
                assert batch.stats.failed_over == 1
                # Exactly-once: one execution banked from the dead primary,
                # one on the secondary — never the same digest twice.
                assert batch.stats.executed == 2
                assert secondary.server.stats.executed == 1, (
                    "the banked outcome must not re-execute after failover"
                )


def test_failover_reuses_shared_cache_without_reexecuting(tmp_path):
    """Two daemons over one result cache: killing the warm one costs nothing
    — the survivor serves the whole plan from disk."""

    cache_dir = str(tmp_path / "shared-cache")
    with spawn_local_daemon(workers=1, cache_dir=cache_dir) as (process, primary):
        warm_engine = ServiceEngine(primary, timeout=120.0)
        cold = warm_engine.run(small_plan("randacc"))
        warm_engine.close()
        assert cold.stats.executed == 2
        with ServerThread(workers=1, cache_dir=cache_dir) as secondary:
            os.kill(process.pid, signal.SIGKILL)
            engine = ServiceEngine(f"{primary},{secondary.address}", timeout=120.0)
            warm = engine.run(small_plan("randacc"))
            engine.close()
            assert warm.stats.failed_over >= 1
            assert warm.stats.executed == 0, "shared cache must prevent re-execution"
            assert warm.stats.cache_hits == 2
            assert {d: r.as_dict() for d, r in warm.results.items()} == {
                d: r.as_dict() for d, r in cold.results.items()
            }


# ------------------------------------------------------------ degrade local


def test_degrade_to_local_when_fleet_unreachable():
    fallback_used = {"count": 0}

    def factory():
        fallback_used["count"] += 1
        return SimEngine(runner=SerialRunner())

    engine = ServiceEngine(
        f"{DEAD},127.0.0.1:2", timeout=5.0, local_engine_factory=factory
    )
    reference = SimEngine(runner=SerialRunner()).run(small_plan())
    batch = engine.run(small_plan())
    assert fallback_used["count"] == 1
    assert batch.stats.degraded_local == 2
    assert batch.stats.failed_over == 2
    assert {d: r.as_dict() for d, r in batch.results.items()} == {
        d: r.as_dict() for d, r in reference.results.items()
    }, "degraded execution must be bit-identical to a local run"
    # The factory's engine is reused, not rebuilt per run.
    engine.run(small_plan())
    assert fallback_used["count"] == 1


def test_degrade_without_fallback_raises():
    engine = ServiceEngine(DEAD, timeout=5.0)
    with pytest.raises(ServiceError, match="no healthy service endpoint"):
        engine.run(small_plan())


def test_degrade_to_local_honors_resume(tmp_path):
    """`build_engine(service=...)` wires the full local configuration into
    the fallback: a degraded run resumes from the prior checkpoint."""

    cache_dir = str(tmp_path / "cache")
    checkpoint_dir = str(tmp_path / "ckpt")
    first = SimEngine(
        runner=SerialRunner(),
        cache=ResultCache(cache_dir),
        checkpoint_dir=checkpoint_dir,
    ).run(small_plan())
    assert first.stats.executed == 2

    engine = build_engine(
        service=f"{DEAD},127.0.0.1:2",
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
        resume=True,
    )
    assert isinstance(engine, ServiceEngine)
    batch = engine.run(small_plan())
    assert batch.stats.degraded_local == 2
    assert batch.stats.resumed == 2, "the fallback must replay the checkpoint"
    assert batch.stats.executed == 0, "resume + cache must re-execute nothing"
    assert {d: r.as_dict() for d, r in batch.results.items()} == {
        d: r.as_dict() for d, r in first.results.items()
    }


# ------------------------------------------------------------ spawn hygiene


def test_spawn_local_daemon_kills_child_on_exit():
    with spawn_local_daemon(workers=1) as (process, address):
        assert address
        assert process.poll() is None, "daemon must be running inside the block"
    assert process.poll() is not None, "daemon must be reaped on exit"


def test_spawn_local_daemon_kills_child_when_body_raises():
    leaked = {}
    with pytest.raises(RuntimeError, match="boom"):
        with spawn_local_daemon(workers=1) as (process, _address):
            leaked["process"] = process
            raise RuntimeError("boom")
    assert leaked["process"].poll() is not None, "daemon must be reaped on error"
