"""Tests for the set-associative cache model."""

import pytest

from repro.config import CacheConfig
from repro.memory.cache import Cache


def small_cache(size=1024, assoc=2):
    return Cache(CacheConfig(name="test", size_bytes=size, associativity=assoc, hit_latency=2, mshrs=4))


class TestLookupAndInsert:
    def test_empty_cache_misses(self):
        cache = small_cache()
        assert cache.lookup(0x1000) is None
        assert not cache.contains(0x1000, 100.0)

    def test_insert_then_hit_after_fill_time(self):
        cache = small_cache()
        cache.insert(0x1000, fill_time=50.0)
        assert not cache.contains(0x1000, 10.0)
        assert cache.contains(0x1000, 50.0)

    def test_same_line_aliases(self):
        cache = small_cache()
        cache.insert(0x1000, fill_time=0.0)
        assert cache.contains(0x1000 + 63, 1.0)
        assert not cache.contains(0x1000 + 64, 1.0)

    def test_resident_lines_counter(self):
        cache = small_cache()
        for i in range(4):
            cache.insert(0x1000 + 64 * i, fill_time=0.0)
        assert cache.resident_lines == 4


class TestReplacement:
    def test_lru_eviction_within_set(self):
        cache = small_cache(size=256, assoc=2)  # 2 sets of 2 ways
        num_sets = cache.config.num_sets
        line = 64
        set_stride = num_sets * line
        a, b, c = 0x10000, 0x10000 + set_stride, 0x10000 + 2 * set_stride
        cache.insert(a, 0.0)
        cache.insert(b, 0.0)
        cache.touch(a)  # a is now most recently used
        victim = cache.insert(c, 0.0)
        assert victim is not None
        assert cache.contains(a, 1.0)
        assert not cache.contains(b, 1.0)

    def test_eviction_counts_unused_prefetches(self):
        cache = small_cache(size=256, assoc=1)
        num_sets = cache.config.num_sets
        set_stride = num_sets * 64
        cache.insert(0x10000, 0.0, prefetched=True)
        cache.insert(0x10000 + set_stride, 0.0)
        assert cache.stats.prefetch_evicted_unused == 1

    def test_used_prefetch_not_counted_as_unused(self):
        cache = small_cache(size=256, assoc=1)
        set_stride = cache.config.num_sets * 64
        cache.insert(0x10000, 0.0, prefetched=True)
        cache.touch(0x10000)
        cache.insert(0x10000 + set_stride, 0.0)
        assert cache.stats.prefetch_evicted_unused == 0
        assert cache.stats.prefetch_used == 1

    def test_dirty_eviction_recorded(self):
        cache = small_cache(size=256, assoc=1)
        set_stride = cache.config.num_sets * 64
        cache.insert(0x10000, 0.0, write=True)
        cache.insert(0x10000 + set_stride, 0.0)
        assert cache.stats.dirty_evictions == 1


class TestReinsertMerges:
    """Re-inserting a resident/in-flight tag merges instead of replacing."""

    def test_prefetch_over_dirty_demand_line_keeps_dirty_state(self):
        cache = small_cache(size=256, assoc=1)
        set_stride = cache.config.num_sets * 64
        cache.insert(0x10000, 0.0, write=True)          # dirty demand line
        cache.insert(0x10000, 5.0, prefetched=True)     # prefetch lands on it
        # The redundant prefetch neither counts a fill nor clears dirtiness.
        assert cache.stats.prefetch_fills == 0
        assert cache.lookup(0x10000).dirty
        cache.insert(0x10000 + set_stride, 10.0)        # evict the line
        assert cache.stats.dirty_evictions == 1

    def test_demand_over_inflight_prefetch_keeps_prefetch_identity(self):
        cache = small_cache()
        cache.insert(0x2000, fill_time=100.0, prefetched=True)  # in flight
        cache.insert(0x2000, fill_time=50.0)                    # demand fill
        line = cache.lookup(0x2000)
        assert line.prefetched                  # identity preserved ...
        assert line.fill_time == 50.0           # ... and availability earliest
        assert cache.stats.prefetch_fills == 1  # not double counted
        cache.touch(0x2000)
        assert cache.stats.prefetch_used == 1

    def test_reinsert_never_evicts_or_loses_used_state(self):
        cache = small_cache(size=256, assoc=1)
        cache.insert(0x10000, 0.0, prefetched=True)
        cache.touch(0x10000)                    # prefetch used
        victim = cache.insert(0x10000, 1.0, prefetched=True)
        assert victim is None
        assert cache.stats.evictions == 0
        line = cache.lookup(0x10000)
        assert line.used
        # A later eviction must not re-count it as unused.
        set_stride = cache.config.num_sets * 64
        cache.insert(0x10000 + set_stride, 2.0)
        assert cache.stats.prefetch_evicted_unused == 0

    def test_reinsert_refreshes_lru_order(self):
        cache = small_cache(size=256, assoc=2)  # 2 sets of 2 ways
        set_stride = cache.config.num_sets * 64
        a, b, c = 0x10000, 0x10000 + set_stride, 0x10000 + 2 * set_stride
        cache.insert(a, 0.0)
        cache.insert(b, 0.0)
        cache.insert(a, 1.0)  # merge refreshes recency: b is now LRU
        cache.insert(c, 2.0)
        assert cache.contains(a, 10.0)
        assert not cache.contains(b, 10.0)


class TestPrefetchBookkeeping:
    def test_prefetch_fill_counted(self):
        cache = small_cache()
        cache.insert(0x2000, 10.0, prefetched=True)
        assert cache.stats.prefetch_fills == 1

    def test_touch_marks_prefetch_used_once(self):
        cache = small_cache()
        cache.insert(0x2000, 0.0, prefetched=True)
        cache.touch(0x2000)
        cache.touch(0x2000)
        assert cache.stats.prefetch_used == 1

    def test_utilisation_metric(self):
        cache = small_cache()
        cache.insert(0x2000, 0.0, prefetched=True)
        cache.insert(0x3000, 0.0, prefetched=True)
        cache.touch(0x2000)
        assert cache.stats.prefetch_utilisation == pytest.approx(0.5)

    def test_finalize_counts_remaining_unused(self):
        cache = small_cache()
        cache.insert(0x2000, 0.0, prefetched=True)
        cache.finalize()
        assert cache.stats.prefetch_unused_at_end == 1

    def test_write_touch_marks_dirty(self):
        cache = small_cache()
        cache.insert(0x2000, 0.0)
        cache.touch(0x2000, write=True)
        assert cache.lookup(0x2000).dirty


class TestStats:
    def test_read_hit_rate(self):
        cache = small_cache()
        cache.stats.demand_read_accesses = 10
        cache.stats.demand_read_hits = 4
        assert cache.stats.demand_read_hit_rate == pytest.approx(0.4)

    def test_as_dict_contains_expected_keys(self):
        stats = small_cache().stats.as_dict()
        for key in ("demand_read_hit_rate", "prefetch_utilisation", "misses", "evictions"):
            assert key in stats

    def test_reset(self):
        cache = small_cache()
        cache.insert(0x2000, 0.0)
        cache.reset()
        assert cache.resident_lines == 0
        assert cache.stats.prefetch_fills == 0
