"""Tests for the workload registry and the off-paper workloads it serves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.cpu.trace import OpKind
from repro.errors import RegistryError, WorkloadError
from repro.sim import PrefetchMode, SimEngine, SimRequest, simulate
from repro.sim.modes import mode_available
from repro.workloads import build_workload, registry
from repro.workloads.base import Workload
from repro.workloads.registry import WorkloadRegistry, WorkloadSpec, register_workload


class _DummyWorkload(Workload):
    """Minimal registrable workload used to exercise registration paths."""

    name = "dummy"
    pattern = "none"

    def _build_data(self):
        self.data = self.space.allocate_array("dummy_data", 64)

    def _emit_trace(self, tb, *, software_prefetch):
        for i in range(64):
            tb.load(self.data.addr_of(i))

    def _build_manual_configuration(self):
        raise NotImplementedError

    def _build_loop_ir(self):
        raise NotImplementedError


class TestRegistration:
    def test_names_cover_paper_and_extended(self):
        names = registry.names()
        assert len(names) == 11
        assert set(registry.paper_names()) | set(registry.extended_names()) == set(names)
        assert registry.extended_names() == ["bfs", "spmv", "unionfind"]

    def test_specs_carry_metadata(self):
        spec = registry.get("bfs")
        assert spec.paper_reference is False
        assert spec.pattern
        assert spec.description
        assert "tiny" in spec.scales
        assert registry.get("intsort").paper_reference is True

    def test_duplicate_name_registration_raises(self):
        private = WorkloadRegistry()
        register_workload(registry=private)(_DummyWorkload)
        assert "dummy" in private
        with pytest.raises(RegistryError):
            register_workload(registry=private)(_DummyWorkload)

    def test_anonymous_class_rejected(self):
        private = WorkloadRegistry()

        class Nameless(Workload):
            def _build_data(self):
                ...

            def _emit_trace(self, tb, *, software_prefetch):
                ...

            def _build_manual_configuration(self):
                ...

            def _build_loop_ir(self):
                ...

        with pytest.raises(RegistryError):
            register_workload(registry=private)(Nameless)

    def test_unknown_name_rejected(self):
        with pytest.raises(RegistryError):
            registry.get("nonexistent")

    def test_unknown_scale_rejected_at_registration(self):
        private = WorkloadRegistry()
        with pytest.raises(WorkloadError):
            register_workload(registry=private, scales=("enormous",))(_DummyWorkload)

    def test_spec_build_rejects_unsupported_scale(self):
        private = WorkloadRegistry()
        register_workload(registry=private, scales=("tiny",))(_DummyWorkload)
        workload = private.build("dummy", scale="tiny")
        assert workload.space.mapped_bytes > 0
        with pytest.raises(WorkloadError):
            private.build("dummy", scale="default")


class TestSimRequestRoundTrip:
    def test_every_registered_name_digests(self):
        digests = set()
        for name in registry.names():
            request = SimRequest(workload=name, mode=PrefetchMode.NONE.value, scale="tiny")
            assert len(request.digest) == 64
            digests.add(request.digest)
        # Distinct workloads must never collide in the plan/cache key space.
        assert len(digests) == len(registry.names())

    def test_identical_specs_share_a_digest(self):
        first = SimRequest(workload="spmv", mode="manual", scale="tiny", seed=7)
        second = SimRequest(workload="spmv", mode="manual", scale="tiny", seed=7)
        assert first.digest == second.digest

    def test_new_workload_resolves_through_engine(self):
        engine = SimEngine()
        request = SimRequest(
            workload="spmv", mode=PrefetchMode.MANUAL.value, scale="tiny",
            config=SystemConfig.scaled(),
        )
        result = engine.simulate(request)
        assert result is not None
        assert result.workload == "spmv"
        # A second run is served from the memo, not re-simulated.
        engine.simulate(request)
        assert engine.stats.memo_hits == 1
        assert engine.stats.executed == 1


class TestNewWorkloads:
    def test_traces_deterministic_across_builds(self, each_extended_workload_name):
        name = each_extended_workload_name
        first = build_workload(name, scale="tiny", seed=11)
        second = build_workload(name, scale="tiny", seed=11)
        ops_a = [(op.kind, op.addr, op.deps) for op in first.trace("plain")]
        ops_b = [(op.kind, op.addr, op.deps) for op in second.trace("plain")]
        assert ops_a == ops_b

    def test_traces_differ_across_seeds(self, each_extended_workload_name):
        name = each_extended_workload_name
        first = build_workload(name, scale="tiny", seed=11)
        second = build_workload(name, scale="tiny", seed=12)
        ops_a = [(op.kind, op.addr) for op in first.trace("plain")]
        ops_b = [(op.kind, op.addr) for op in second.trace("plain")]
        assert ops_a != ops_b

    def test_manual_configuration_valid(self, each_extended_workload_name):
        workload = build_workload(each_extended_workload_name, scale="tiny")
        config = workload.manual_configuration()
        config.validate()
        assert config.kernels
        assert any(r.load_kernel for r in config.ranges)
        assert config.code_footprint_bytes() <= 4096

    def test_software_variant_adds_prefetches(self, each_extended_workload_name):
        workload = build_workload(each_extended_workload_name, scale="tiny")
        software = workload.trace("software")
        assert software.count_kind(OpKind.SOFTWARE_PREFETCH) > 0

    def test_unionfind_compression_shortens_repeat_queries(self):
        workload = build_workload("unionfind", scale="tiny")
        workload.trace("plain")
        # The simulated parent array keeps the pristine chains the walker
        # kernel must chase; the compression happens on the Python mirror.
        assert workload.parent.to_list() == list(workload._initial_parent)
        compressed = workload.compressed_parent
        assert compressed is not None

        def root_of(forest, x):
            hops = 0
            while forest[x] != x:
                x = int(forest[x])
                hops += 1
                assert hops <= 64
            return x, hops

        pristine = workload._initial_parent
        roots = workload.roots.to_list()
        for i, element in enumerate(workload._queries[:64]):
            expected_root, pristine_hops = root_of(pristine, int(element))
            # Each traced find recorded the true root of its element.
            assert roots[i] == expected_root
            # Halving never lengthens a path, and long paths get shorter.
            _, compressed_hops = root_of(compressed, int(element))
            assert compressed_hops <= max(pristine_hops, 1)


class TestPPUPrefetchProperty:
    """Each new workload's manual PPU mode must actually prefetch."""

    @pytest.mark.parametrize("name", registry.extended_names())
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_manual_mode_issues_prefetches(self, name, seed):
        workload = build_workload(name, scale="tiny", seed=seed)
        assert mode_available(workload, PrefetchMode.MANUAL)
        result = simulate(workload, PrefetchMode.MANUAL, SystemConfig.scaled())
        assert result.prefetcher is not None
        assert result.prefetcher["prefetches_issued"] >= 1
        assert result.prefetcher["events_executed"] >= 1
