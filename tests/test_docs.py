"""Documentation integrity: intra-repo Markdown links must resolve."""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from check_docs_links import check_file, check_tree, iter_markdown_files  # noqa: E402


class TestDocsLinks:
    def test_docs_tree_exists(self):
        docs = REPO_ROOT / "docs"
        for page in ("ARCHITECTURE.md", "memory.md", "programmable.md", "engine.md", "workloads.md"):
            assert (docs / page).is_file(), f"missing docs page {page}"

    def test_no_broken_intra_repo_links(self):
        errors = check_tree(REPO_ROOT)
        assert not errors, "\n".join(errors)

    def test_checker_detects_breakage(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [missing](nope.md) and [ok](page.md) and [web](https://x.test)")
        errors = check_file(page, tmp_path)
        assert len(errors) == 1 and "nope.md" in errors[0]

    def test_checker_skips_code_fences(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```\n[fake](not-a-file.md)\n```\n")
        assert check_file(page, tmp_path) == []

    def test_checker_skips_inline_code_spans(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("an example like `[label](your-file.md)` in prose\n")
        assert check_file(page, tmp_path) == []

    def test_markdown_files_discovered(self):
        files = list(iter_markdown_files(REPO_ROOT))
        names = {path.name for path in files}
        assert "README.md" in names and "ARCHITECTURE.md" in names
