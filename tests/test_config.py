"""Tests for the system configuration (Table 1 presets and validation)."""

import pytest

from repro.config import (
    CACHE_LINE_BYTES,
    CacheConfig,
    CoreConfig,
    DRAMConfig,
    GHBPrefetcherConfig,
    ProgrammablePrefetcherConfig,
    SystemConfig,
    TLBConfig,
)
from repro.errors import ConfigurationError


class TestPresets:
    def test_paper_preset_matches_table1(self):
        config = SystemConfig.paper()
        assert config.core.issue_width == 3
        assert config.core.rob_entries == 40
        assert config.core.frequency_ghz == pytest.approx(3.2)
        assert config.l1.size_bytes == 32 * 1024
        assert config.l1.mshrs == 12
        assert config.l2.size_bytes == 1024 * 1024
        assert config.prefetcher.num_ppus == 12
        assert config.prefetcher.observation_queue_entries == 40
        assert config.prefetcher.prefetch_queue_entries == 200
        assert config.stride.degree == 8

    def test_scaled_preset_keeps_structure_but_shrinks_l2(self):
        paper = SystemConfig.paper()
        scaled = SystemConfig.scaled()
        assert scaled.l2.size_bytes < paper.l2.size_bytes
        assert scaled.prefetcher == paper.prefetcher
        assert scaled.core == paper.core

    def test_scaled_preset_validates(self):
        SystemConfig.scaled().validate()

    def test_ppu_cycle_ratio(self):
        config = SystemConfig.paper()
        assert config.ppu_cycle_ratio == pytest.approx(3.2)
        doubled = config.with_prefetcher(ppu_frequency_ghz=2.0)
        assert doubled.ppu_cycle_ratio == pytest.approx(1.6)

    def test_ghb_presets(self):
        regular = GHBPrefetcherConfig.regular()
        large = GHBPrefetcherConfig.large()
        assert large.history_entries > regular.history_entries
        assert regular.depth == 16 and regular.width == 6


class TestValidation:
    def test_cache_size_must_be_power_of_two_sets(self):
        bad = CacheConfig(name="L1", size_bytes=3 * 1024, associativity=2, hit_latency=2, mshrs=4)
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_cache_needs_mshr(self):
        bad = CacheConfig(name="L1", size_bytes=32 * 1024, associativity=2, hit_latency=2, mshrs=0)
        with pytest.raises(ConfigurationError):
            bad.validate()

    def test_num_sets(self):
        cache = CacheConfig(name="L1", size_bytes=32 * 1024, associativity=2, hit_latency=2, mshrs=4)
        assert cache.num_sets == 32 * 1024 // (2 * CACHE_LINE_BYTES)

    def test_core_rejects_zero_width(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(issue_width=0).validate()

    def test_core_rejects_bad_mispredict_rate(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(branch_mispredict_rate=1.5).validate()

    def test_dram_rejects_zero_latency(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(access_latency_cycles=0).validate()

    def test_tlb_rejects_no_walkers(self):
        with pytest.raises(ConfigurationError):
            TLBConfig(active_walkers=0).validate()

    def test_prefetcher_rejects_zero_ppus(self):
        with pytest.raises(ConfigurationError):
            ProgrammablePrefetcherConfig(num_ppus=0).validate()

    def test_prefetcher_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            ProgrammablePrefetcherConfig(ewma_alpha=0.0).validate()

    def test_l1_larger_than_l2_rejected(self):
        config = SystemConfig(
            l1=CacheConfig(name="L1D", size_bytes=2 * 1024 * 1024, associativity=2, hit_latency=2, mshrs=4)
        )
        with pytest.raises(ConfigurationError):
            config.validate()


class TestOverrides:
    def test_with_prefetcher_returns_new_config(self):
        base = SystemConfig.scaled()
        tuned = base.with_prefetcher(num_ppus=6, ppu_frequency_ghz=2.0)
        assert tuned.prefetcher.num_ppus == 6
        assert base.prefetcher.num_ppus == 12
        assert tuned.prefetcher.ppu_frequency_ghz == pytest.approx(2.0)

    def test_with_prefetcher_validates(self):
        with pytest.raises(ConfigurationError):
            SystemConfig.scaled().with_prefetcher(num_ppus=0)

    def test_with_core_override(self):
        tuned = SystemConfig.scaled().with_core(rob_entries=128)
        assert tuned.core.rob_entries == 128

    def test_blocking_mode_override(self):
        tuned = SystemConfig.scaled().with_prefetcher(blocking_mode=True)
        assert tuned.prefetcher.blocking_mode is True
        assert SystemConfig.scaled().prefetcher.blocking_mode is False
