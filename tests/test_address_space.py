"""Tests for the simulated virtual address space."""

import pytest

from repro.errors import AccessError, AllocationError
from repro.memory.address_space import AddressSpace, DEFAULT_HEAP_BASE


class TestAllocation:
    def test_allocations_are_line_aligned(self, space):
        region = space.allocate("a", 10)
        assert region.base % 64 == 0

    def test_allocations_do_not_overlap(self, space):
        first = space.allocate("a", 100)
        second = space.allocate("b", 100)
        assert second.base >= first.end

    def test_zero_size_rejected(self, space):
        with pytest.raises(AllocationError):
            space.allocate("a", 0)

    def test_mapped_bytes_accumulates(self, space):
        space.allocate("a", 64)
        space.allocate("b", 128)
        assert space.mapped_bytes == 192

    def test_heap_base_respected(self):
        space = AddressSpace(heap_base=0x2000_0000)
        region = space.allocate("a", 64)
        assert region.base >= 0x2000_0000

    def test_bad_heap_base(self):
        with pytest.raises(AllocationError):
            AddressSpace(heap_base=0)


class TestWordAccess:
    def test_read_write_roundtrip(self, space):
        region = space.allocate("a", 64)
        space.write_word(region.base, 1234)
        assert space.read_word(region.base) == 1234

    def test_negative_values_roundtrip_as_signed(self, space):
        region = space.allocate("a", 64)
        space.write_word(region.base, -5)
        assert space.read_word(region.base) == -5

    def test_unmapped_read_raises(self, space):
        with pytest.raises(AccessError):
            space.read_word(DEFAULT_HEAP_BASE - 64)

    def test_unaligned_access_raises(self, space):
        region = space.allocate("a", 64)
        with pytest.raises(AccessError):
            space.read_word(region.base + 3)

    def test_is_mapped(self, space):
        region = space.allocate("a", 64)
        assert space.is_mapped(region.base)
        assert space.is_mapped(region.end - 1)
        assert not space.is_mapped(region.end + 4096)


class TestTypedArray:
    def test_fill_and_index(self, space):
        array = space.allocate_array("a", 16, values=range(16))
        assert array[0] == 0
        assert array[15] == 15
        assert len(array) == 16

    def test_addr_of_is_linear(self, space):
        array = space.allocate_array("a", 8)
        assert array.addr_of(3) - array.addr_of(0) == 24

    def test_out_of_bounds_raises(self, space):
        array = space.allocate_array("a", 8)
        with pytest.raises(AccessError):
            array[8]
        with pytest.raises(AccessError):
            array.addr_of(-1)

    def test_setitem(self, space):
        array = space.allocate_array("a", 4)
        array[2] = 99
        assert array[2] == 99
        assert space.read_word(array.addr_of(2)) == 99

    def test_to_list_roundtrip(self, space):
        values = [5, -3, 7, 0]
        array = space.allocate_array("a", 4, values=values)
        assert array.to_list() == values
        assert list(array) == values

    def test_end_addr(self, space):
        array = space.allocate_array("a", 10)
        assert array.end_addr - array.base_addr == 80

    def test_overfill_rejected(self, space):
        array = space.allocate_array("a", 2)
        with pytest.raises(AllocationError):
            array.fill(range(5))


class TestLineReads:
    def test_read_line_returns_eight_words(self, space):
        array = space.allocate_array("a", 8, values=range(8))
        line = space.read_line(array.base_addr)
        assert line == list(range(8))

    def test_read_line_mid_line_address(self, space):
        array = space.allocate_array("a", 8, values=range(8))
        assert space.read_line(array.addr_of(5)) == list(range(8))

    def test_read_line_pads_unmapped_words_with_zero(self, space):
        # A 2-word allocation still yields an 8-word line view.
        array = space.allocate_array("a", 2, values=[7, 9])
        line = space.read_line(array.base_addr)
        assert line[:2] == [7, 9]
        assert len(line) == 8
