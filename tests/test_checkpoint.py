"""Tests for the run-manifest checkpoint tier and engine resume semantics.

The manifest is an *index* over the result cache, never a second copy of
data: these tests pin its on-disk robustness (atomicity, lazy creation,
corrupt/foreign files reading as "no progress", dead-writer sweeps) and the
resume contract — a killed run re-invoked with ``resume=True`` executes
only the missing requests and produces bit-identical results.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.sim.engine import (
    ManifestEntry,
    ResultCache,
    RunManifest,
    SerialRunner,
    SimEngine,
    SimPlan,
    SimRequest,
    plan_fingerprint,
)
from repro.sim.engine.checkpoint import (
    MANIFEST_SUFFIX,
    MANIFEST_VERSION,
    manifest_paths,
    read_manifest,
)

WORKLOADS = ["intsort", "randacc"]
MODES = ["none", "stride", "manual"]


def tiny_plan(workloads=WORKLOADS, modes=MODES) -> SimPlan:
    config = SystemConfig.scaled()
    return SimPlan(
        SimRequest(workload=w, mode=m, scale="tiny", seed=3, config=config)
        for w in workloads
        for m in modes
    )


def engine_for(tmp_path, *, resume=False, cache=True) -> SimEngine:
    return SimEngine(
        runner=SerialRunner(trace_store=None),
        cache=ResultCache(tmp_path / "cache") if cache else None,
        checkpoint_dir=tmp_path / "ckpt",
        resume=resume,
    )


class TestPlanFingerprint:
    def test_order_and_duplicate_independent(self):
        digests = ["b" * 64, "a" * 64, "c" * 64]
        assert plan_fingerprint(digests) == plan_fingerprint(reversed(digests))
        assert plan_fingerprint(digests) == plan_fingerprint(digests + digests)

    def test_distinguishes_plans(self):
        assert plan_fingerprint(["a" * 64]) != plan_fingerprint(["b" * 64])


class TestRunManifest:
    def test_lazy_creation_records_and_round_trips(self, tmp_path):
        manifest = RunManifest(tmp_path, ["d1", "d2", "d3"])
        assert not manifest.path.exists()  # nothing recorded → nothing written
        manifest.record_batch([("d1", "ok", None), ("d2", "failed", "w/m: boom")])
        assert manifest.path.exists()
        assert manifest.path.name == f"{manifest.fingerprint}{MANIFEST_SUFFIX}"

        prior = RunManifest(tmp_path, ["d3", "d2", "d1"]).load_prior()
        assert prior == {
            "d1": ManifestEntry("ok"),
            "d2": ManifestEntry("failed", "w/m: boom"),
        }

    def test_empty_record_batch_writes_nothing(self, tmp_path):
        manifest = RunManifest(tmp_path, ["d1"])
        manifest.record_batch([])
        assert not manifest.path.exists()

    def test_unknown_status_rejected(self, tmp_path):
        manifest = RunManifest(tmp_path, ["d1"])
        with pytest.raises(ValueError):
            manifest.record_batch([("d1", "exploded", None)])

    def test_corrupt_version_skew_and_foreign_manifests_read_empty(self, tmp_path):
        manifest = RunManifest(tmp_path, ["d1"])
        manifest.record_batch([("d1", "ok", None)])

        # Truncated JSON.
        manifest.path.write_text("{\"version\": 1, \"entr")
        assert manifest.load_prior() == {}
        assert read_manifest(manifest.path) is None

        # A future format version is not guessed at.
        manifest.path.write_text(json.dumps({
            "version": MANIFEST_VERSION + 1, "plan": manifest.fingerprint,
            "entries": {"d1": {"status": "ok"}},
        }))
        assert manifest.load_prior() == {}

        # Another plan's manifest at this path is not our progress.
        manifest.path.write_text(json.dumps({
            "version": MANIFEST_VERSION, "plan": "f" * 64,
            "entries": {"d1": {"status": "ok"}},
        }))
        assert manifest.load_prior() == {}

        # Junk statuses are dropped entry-by-entry, not fatal.
        manifest.path.write_text(json.dumps({
            "version": MANIFEST_VERSION, "plan": manifest.fingerprint,
            "entries": {"d1": {"status": "ok"}, "d2": {"status": "junk"}, "d3": 7},
        }))
        assert manifest.load_prior() == {"d1": ManifestEntry("ok")}

    def test_manifest_paths_lists_only_manifests(self, tmp_path):
        manifest = RunManifest(tmp_path, ["d1"])
        manifest.record_batch([("d1", "ok", None)])
        (tmp_path / "stray.json").write_text("{}")
        assert manifest_paths(tmp_path) == [manifest.path]


class TestDeadWriterSweep:
    """The manifest directory sweeps dead writers' temp litter on first write."""

    @staticmethod
    def _dead_pid() -> int:
        child = subprocess.Popen([sys.executable, "-c", "pass"])
        child.wait()
        return child.pid

    def test_sweeps_modern_and_legacy_tmp_names_keeps_live(self, tmp_path):
        dead = self._dead_pid()
        name = f"{'a' * 64}{MANIFEST_SUFFIX}"
        dead_modern = tmp_path / f"{name}.tmp.{dead}.140210.7"
        dead_legacy = tmp_path / f"{name}.tmp.{dead}"
        unparsable = tmp_path / f"{name}.tmp.not-a-pid"
        for stale in (dead_modern, dead_legacy, unparsable):
            stale.write_bytes(b"partial")

        manifest = RunManifest(tmp_path, ["d1"])
        manifest.record_batch([("d1", "ok", None)])

        assert not dead_modern.exists()
        assert not dead_legacy.exists()
        assert unparsable.exists()  # unknown provenance: never guess
        # No litter of our own either: writes are write-then-rename.
        assert sorted(tmp_path.glob("*.tmp.*")) == [unparsable]


class TestEngineResume:
    def test_full_run_writes_complete_manifest(self, tmp_path):
        plan = tiny_plan()
        engine = engine_for(tmp_path)
        batch = engine.run(plan)
        assert batch.stats.executed == len(plan)

        (path,) = manifest_paths(tmp_path / "ckpt")
        data = read_manifest(path)
        assert data is not None
        assert data["plan"] == plan_fingerprint(d for d, _ in plan.items())
        assert data["requests"] == len(plan)
        statuses = {entry["status"] for entry in data["entries"].values()}
        assert len(data["entries"]) == len(plan)
        assert statuses <= {"ok", "unavailable"}

    def test_resume_executes_nothing_and_is_bit_identical(self, tmp_path):
        plan = tiny_plan()
        first = engine_for(tmp_path).run(plan)

        resumed = engine_for(tmp_path, resume=True).run(tiny_plan())
        assert resumed.stats.executed == 0
        assert resumed.stats.resumed == len(plan)
        for digest in first.results:
            assert resumed[digest].as_dict() == first[digest].as_dict()
        assert resumed.skipped == first.skipped

    def test_resume_without_cache_reexecutes_ok_entries(self, tmp_path):
        plan = tiny_plan(workloads=["intsort"], modes=["none", "stride"])
        engine_for(tmp_path).run(plan)

        # Same manifest, pruned cache: "ok" markers alone are not results.
        fresh = SimEngine(
            runner=SerialRunner(trace_store=None),
            cache=ResultCache(tmp_path / "other-cache"),
            checkpoint_dir=tmp_path / "ckpt",
            resume=True,
        )
        batch = fresh.run(tiny_plan(workloads=["intsort"], modes=["none", "stride"]))
        assert batch.stats.executed == len(plan)
        assert batch.stats.resumed == 0
        assert len(batch) == len(plan)

    def test_resume_trusts_unavailable_markers_without_cache(self, tmp_path):
        plan = tiny_plan(workloads=["intsort"], modes=["none"])
        digests = [digest for digest, _ in plan.items()]
        manifest = RunManifest(tmp_path / "ckpt", digests)
        manifest.record_batch([(digest, "unavailable", None) for digest in digests])

        engine = engine_for(tmp_path, resume=True, cache=False)
        batch = engine.run(plan)
        assert batch.stats.executed == 0
        assert batch.stats.resumed == len(plan)
        assert batch.skipped == set(digests)

    def test_resume_retries_failed_entries(self, tmp_path):
        plan = tiny_plan(workloads=["intsort"], modes=["none"])
        digests = [digest for digest, _ in plan.items()]
        manifest = RunManifest(tmp_path / "ckpt", digests)
        manifest.record_batch([(digest, "failed", "w/m: transient") for digest in digests])

        engine = engine_for(tmp_path, resume=True)
        batch = engine.run(plan)
        # Failures are never sticky: the marked digest executed again.
        assert batch.stats.executed == len(plan)
        assert batch.stats.resumed == 0
        assert not batch.failures

        # ...and the manifest now records the successful outcome.
        prior = RunManifest(tmp_path / "ckpt", digests).load_prior()
        assert all(entry.status == "ok" for entry in prior.values())

    def test_partially_warm_run_writes_a_complete_manifest(self, tmp_path):
        """Cache-hit requests are carried into the new plan's manifest.

        A grown sweep (the old points warm, one new point executed) must
        leave a manifest covering *all* its requests, or a later resume of
        the grown plan would re-execute the warm ones after a cache prune
        believing they never completed.
        """

        engine_for(tmp_path).run(tiny_plan(workloads=["intsort"], modes=["none", "stride"]))

        grown = tiny_plan(workloads=["intsort"], modes=["none", "stride", "manual"])
        batch = engine_for(tmp_path).run(grown)
        assert batch.stats.cache_hits == 2
        assert batch.stats.executed == 1

        fingerprint = plan_fingerprint(digest for digest, _ in grown.items())
        data = read_manifest(tmp_path / "ckpt" / f"{fingerprint}{MANIFEST_SUFFIX}")
        assert data is not None and len(data["entries"]) == len(grown)
