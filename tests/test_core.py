"""Tests for the out-of-order core timing model.

These check the properties the evaluation relies on: dependent loads
serialise, independent loads overlap up to the machine's window, software
prefetches do not stall the pipeline, and cache hits are much cheaper than
DRAM misses.
"""

import pytest

from repro.config import SystemConfig
from repro.cpu.core import OutOfOrderCore
from repro.cpu.trace import TraceBuilder
from repro.memory.address_space import AddressSpace
from repro.memory.hierarchy import MemoryHierarchy


def make_system(l1_kb: int = 16):
    config = SystemConfig.scaled()
    space = AddressSpace()
    array = space.allocate_array("data", 1 << 16, values=range(1 << 16))
    hierarchy = MemoryHierarchy(config, space)
    return config, space, array, hierarchy


def run(config, hierarchy, trace):
    return OutOfOrderCore(config.core, hierarchy).run(trace)


class TestBasicTiming:
    def test_empty_compute_trace_is_issue_bound(self):
        config, _, _, hierarchy = make_system()
        tb = TraceBuilder()
        for _ in range(300):
            tb.compute(3)
        stats = run(config, hierarchy, tb.build())
        # 900 instructions on a 3-wide core ≈ 300 cycles plus small latency.
        assert stats.cycles == pytest.approx(300, rel=0.1)
        assert stats.instructions == 900

    def test_l1_hits_are_cheap(self):
        config, _, array, hierarchy = make_system()
        tb = TraceBuilder()
        for _ in range(200):
            tb.load(array.addr_of(0))
        stats = run(config, hierarchy, tb.build())
        assert stats.cycles < 2000

    def test_dependent_misses_serialise(self):
        config, _, array, hierarchy = make_system()
        stride = 1024  # one load per distinct line and page region
        tb = TraceBuilder()
        previous = tb.load(array.addr_of(0))
        for i in range(1, 50):
            previous = tb.load(array.addr_of(i * stride), deps=[previous])
        serial = run(config, hierarchy, tb.build())

        _, _, array2, hierarchy2 = make_system()
        tb = TraceBuilder()
        for i in range(50):
            tb.load(array2.addr_of(i * stride))
        parallel = run(config, hierarchy2, tb.build())
        # Dependent pointer-chase style loads must be far slower than the same
        # loads made independent (memory-level parallelism).
        assert serial.cycles > 3 * parallel.cycles

    def test_rob_limits_overlap(self):
        config, _, array, hierarchy = make_system()
        small_rob = config.with_core(rob_entries=8)
        tb = TraceBuilder()
        for i in range(200):
            load = tb.load(array.addr_of(i * 256))
            tb.compute(4, deps=[load])
        constrained = OutOfOrderCore(small_rob.core, hierarchy).run(tb.build())

        _, _, array2, hierarchy2 = make_system()
        tb = TraceBuilder()
        for i in range(200):
            load = tb.load(array2.addr_of(i * 256))
            tb.compute(4, deps=[load])
        wide = OutOfOrderCore(config.with_core(rob_entries=192).core, hierarchy2).run(tb.build())
        assert constrained.cycles > wide.cycles


class TestOpKinds:
    def test_software_prefetch_does_not_stall(self):
        config, _, array, hierarchy = make_system()
        tb = TraceBuilder()
        for i in range(100):
            tb.software_prefetch(array.addr_of(i * 512))
            tb.compute(2)
        stats = run(config, hierarchy, tb.build())
        assert stats.software_prefetches == 100
        assert stats.cycles < 5000  # never waits for the prefetched data

    def test_software_prefetch_fills_cache(self):
        config, _, array, hierarchy = make_system()
        tb = TraceBuilder()
        tb.software_prefetch(array.addr_of(4096))
        tb.compute(500)
        tb.load(array.addr_of(4096))
        run(config, hierarchy, tb.build())
        assert hierarchy.l1.stats.prefetch_fills == 1
        assert hierarchy.l1.stats.prefetch_used == 1

    def test_stores_do_not_stall_retirement(self):
        config, _, array, hierarchy = make_system()
        tb = TraceBuilder()
        for i in range(100):
            tb.store(array.addr_of(i * 256))
        stats = run(config, hierarchy, tb.build())
        assert stats.stores == 100
        assert stats.cycles < 1000

    def test_branches_counted_and_mispredicts_charged(self):
        config, _, _, hierarchy = make_system()
        tb = TraceBuilder()
        for _ in range(500):
            tb.branch()
        stats = run(config, hierarchy, tb.build())
        assert stats.branches == 500
        assert stats.branch_mispredicts == pytest.approx(
            500 * config.core.branch_mispredict_rate, rel=0.2
        )

    def test_stats_dictionary(self):
        config, _, array, hierarchy = make_system()
        tb = TraceBuilder()
        tb.load(array.addr_of(0))
        stats = run(config, hierarchy, tb.build())
        as_dict = stats.as_dict()
        assert as_dict["loads"] == 1
        assert as_dict["ipc"] > 0
