"""Tests for the vectorized replay backend and multi-config batching.

Three layers of evidence that the backend is a pure wall-clock change:

1. a *differential harness* — hypothesis-generated op sequences replayed
   through both backends over identical hierarchies must produce identical
   core and hierarchy statistics, floats included;
2. the *golden fingerprints* — every non-programmable golden entry must be
   reproduced bit-for-bit with the vector backend forced on;
3. *batch parity* — N cache geometries replayed over one trace pass must
   equal N independent simulations, through every entry point (``simulate_batch``,
   ``cache_geometry_sweep``, engine requests).
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.cpu.core import OutOfOrderCore
from repro.cpu.trace import TraceBuilder
from repro.errors import VectorBackendUnsupported
from repro.memory.address_space import AddressSpace
from repro.memory.hierarchy import MemoryHierarchy
from repro.prefetch.stride import StridePrefetcher
from repro.sim import (
    PrefetchMode,
    SerialRunner,
    SimEngine,
    SimPlan,
    SimRequest,
    cache_geometry_sweep,
    mode_available,
    simulate,
    simulate_batch,
    vector_backend_enabled,
)
from repro.sim.system import try_simulate_batch_vector
from repro.sim.vector import BACKEND_ENV_VAR, TraceColumnPlan
from repro.sim.vector import columns as vector_columns
from repro.sim.vector.replay import replay_trace, replay_trace_batch
from repro.workloads import registry

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "golden_stats.json"


@pytest.fixture(scope="module")
def config():
    return SystemConfig.scaled()


@pytest.fixture(scope="module")
def golden_stats():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestBackendSelection:
    def test_default_is_vector_when_numpy_present(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert vector_backend_enabled()

    @pytest.mark.parametrize("value", ["interp", "interpreter", "off", "0", "false", "NO"])
    def test_off_values_force_the_interpreter(self, monkeypatch, value):
        monkeypatch.setenv(BACKEND_ENV_VAR, value)
        assert not vector_backend_enabled()

    @pytest.mark.parametrize("value", ["vector", "", "on", "anything-else"])
    def test_other_values_keep_the_backend_on(self, monkeypatch, value):
        monkeypatch.setenv(BACKEND_ENV_VAR, value)
        assert vector_backend_enabled()

    def test_numpy_absent_disables_the_backend(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(vector_columns, "_np", None)
        assert not vector_backend_enabled()

    def test_numpy_absent_still_simulates(self, tiny_workloads, config, monkeypatch):
        workload = tiny_workloads.get("randacc")
        with_numpy = simulate(workload, PrefetchMode.NONE, config)
        monkeypatch.setattr(vector_columns, "_np", None)
        without = simulate(workload, PrefetchMode.NONE, config)
        assert without.as_dict() == with_numpy.as_dict()

    def test_plan_requires_numpy(self, monkeypatch):
        monkeypatch.setattr(vector_columns, "_np", None)
        trace = TraceBuilder().build()
        with pytest.raises(VectorBackendUnsupported):
            TraceColumnPlan(trace, page_bytes=4096, line_shift=6, issue_width=3)


class TestLaneSupport:
    def test_programmable_hierarchy_is_rejected(self, tiny_workloads, config):
        from repro.programmable.prefetcher import EventTriggeredPrefetcher

        workload = tiny_workloads.get("intsort")
        workload.build()
        hierarchy = MemoryHierarchy(config, workload.space)
        engine = EventTriggeredPrefetcher(config, workload.manual_configuration())
        engine.attach(hierarchy)
        with pytest.raises(VectorBackendUnsupported):
            replay_trace(workload.trace("plain"), hierarchy, config.core)

    def test_negative_addresses_are_rejected(self, config):
        builder = TraceBuilder()
        builder._emit(1, -64, 1, ())  # loads never emit negative addresses
        trace = builder.build()
        hierarchy = MemoryHierarchy(config, AddressSpace())
        with pytest.raises(VectorBackendUnsupported):
            replay_trace(trace, hierarchy, config.core)

    def test_rejection_happens_before_any_state_mutation(self, config):
        builder = TraceBuilder()
        builder.load(0)
        builder._emit(1, -64, 1, ())
        trace = builder.build()
        hierarchy = MemoryHierarchy(config, AddressSpace())
        with pytest.raises(VectorBackendUnsupported):
            replay_trace(trace, hierarchy, config.core)
        stats = hierarchy.collect_stats()
        assert stats.l1["demand_read_accesses"] == 0
        assert stats.dram["demand_accesses"] == 0


# One generated op: (kind, raw address, compute size, raw dependence seeds).
_OP = st.tuples(
    st.sampled_from(["load", "store", "compute", "branch", "swpf"]),
    st.integers(min_value=0, max_value=(1 << 16) - 8),
    st.integers(min_value=1, max_value=4),
    st.lists(st.integers(min_value=0, max_value=1 << 30), max_size=2),
)


def _build_trace(ops):
    """Deterministically map generated op specs onto a valid trace."""

    builder = TraceBuilder()
    for index, (kind, addr, count, dep_seeds) in enumerate(ops):
        deps = [seed % index for seed in dep_seeds] if index else []
        if kind == "load":
            builder.load(addr, deps)
        elif kind == "store":
            builder.store(addr, deps)
        elif kind == "compute":
            builder.compute(count, deps)
        elif kind == "branch":
            builder.branch(deps)
        else:
            builder.software_prefetch(addr, deps)
    return builder.build()


def _run_both(trace, config, *, with_stride):
    """Replay ``trace`` through interpreter and vector backends."""

    outcomes = []
    for backend in ("interp", "vector"):
        hierarchy = MemoryHierarchy(config, AddressSpace())
        if with_stride:
            StridePrefetcher(config.stride).attach(hierarchy)
        if backend == "interp":
            core_stats = OutOfOrderCore(config.core, hierarchy).run(trace)
        else:
            # A tiny chunk size forces several chunk crossings per example,
            # covering the carried-state (ROB window, MSHR, TLB) seams.
            core_stats = replay_trace(trace, hierarchy, config.core, chunk_ops=17)
        hierarchy.finalize()
        outcomes.append((core_stats.as_dict(), hierarchy.collect_stats()))
    return outcomes


class TestDifferentialHarness:
    """Random op sequences must replay identically through both backends."""

    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(_OP, max_size=120))
    def test_pure_lane_matches_interpreter(self, ops):
        config = SystemConfig.scaled()
        trace = _build_trace(ops)
        (interp_core, interp_hier), (vector_core, vector_hier) = _run_both(
            trace, config, with_stride=False
        )
        assert vector_core == interp_core
        assert vector_hier == interp_hier

    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(_OP, max_size=120))
    def test_snooped_lane_matches_interpreter(self, ops):
        # A stride prefetcher installs a demand snoop, driving the shared
        # (attribute-backed) loop variant plus the prefetch interactions.
        config = SystemConfig.scaled()
        trace = _build_trace(ops)
        (interp_core, interp_hier), (vector_core, vector_hier) = _run_both(
            trace, config, with_stride=True
        )
        assert vector_core == interp_core
        assert vector_hier == interp_hier


class TestGoldenParity:
    """Every non-programmable golden fingerprint, vector backend forced."""

    @pytest.mark.parametrize("name", registry.names())
    def test_vector_backend_reproduces_golden_stats(
        self, name, tiny_workloads, config, golden_stats, monkeypatch
    ):
        monkeypatch.setenv(BACKEND_ENV_VAR, "vector")
        workload = tiny_workloads.get(name)
        checked = 0
        for mode in PrefetchMode:
            if mode.uses_programmable_prefetcher or not mode_available(workload, mode):
                continue
            expected = golden_stats[f"{name}/{mode.value}"]
            result = simulate(workload, mode, config)
            measured = json.loads(json.dumps(result.as_dict()))
            assert measured == expected, (
                f"{name}/{mode.value}: vector backend diverged from the "
                f"golden fingerprint"
            )
            checked += 1
        assert checked > 0


GEOMETRIES = [
    {"l1": {"size_bytes": 8 * 1024}},
    {"l1": {"size_bytes": 32 * 1024}},
    {"l1": {"size_bytes": 16 * 1024, "associativity": 4}, "l2": {"size_bytes": 128 * 1024}},
]


class TestMultiConfigBatching:
    def _configs(self, config):
        return [config.with_caches(**geometry) for geometry in GEOMETRIES]

    @pytest.mark.parametrize("mode", [PrefetchMode.NONE, PrefetchMode.STRIDE])
    def test_batch_matches_serial_simulations(self, tiny_workloads, config, mode):
        workload = tiny_workloads.get("intsort")
        configs = self._configs(config)
        batched = simulate_batch(workload, mode, configs)
        assert len(batched) == len(configs)
        for cfg, result in zip(configs, batched):
            serial = simulate(workload, mode, cfg)
            assert result.as_dict() == serial.as_dict()

    def test_try_batch_reports_vector_coverage(self, tiny_workloads, config, monkeypatch):
        workload = tiny_workloads.get("intsort")
        configs = self._configs(config)
        assert try_simulate_batch_vector(workload, PrefetchMode.NONE, configs) is not None
        # Not batchable: single config, programmable mode, differing cores,
        # interpreter forced.
        assert try_simulate_batch_vector(workload, PrefetchMode.NONE, configs[:1]) is None
        assert try_simulate_batch_vector(workload, PrefetchMode.MANUAL, configs) is None
        mixed = [configs[0], configs[1].with_core(rob_entries=64)]
        assert try_simulate_batch_vector(workload, PrefetchMode.NONE, mixed) is None
        monkeypatch.setenv(BACKEND_ENV_VAR, "interp")
        assert try_simulate_batch_vector(workload, PrefetchMode.NONE, configs) is None

    def test_geometry_sweep_is_backend_independent(self, tiny_workloads, config, monkeypatch):
        workload = tiny_workloads.get("randacc")
        sizes = [8 * 1024, 16 * 1024, 32 * 1024]
        vector = cache_geometry_sweep(workload, l1_sizes=sizes, config=config)
        monkeypatch.setenv(BACKEND_ENV_VAR, "interp")
        interp = cache_geometry_sweep(workload, l1_sizes=sizes, config=config)
        assert list(vector) == sizes == list(interp)
        for size in sizes:
            assert vector[size].as_dict() == interp[size].as_dict()
        # Larger caches can only help at equal geometry elsewhere.
        assert vector[32 * 1024].cycles <= vector[8 * 1024].cycles

    def test_batch_replay_shares_one_column_pass(self, tiny_workloads, config, monkeypatch):
        workload = tiny_workloads.get("intsort")
        workload.build()
        trace = workload.trace("plain")
        calls = {"plans": 0}
        original_init = TraceColumnPlan.__init__

        def counting_init(self, *args, **kwargs):
            calls["plans"] += 1
            original_init(self, *args, **kwargs)

        monkeypatch.setattr(TraceColumnPlan, "__init__", counting_init)
        hierarchies = [
            MemoryHierarchy(cfg, workload.space) for cfg in self._configs(config)
        ]
        stats = replay_trace_batch(trace, hierarchies, config.core)
        assert len(stats) == len(hierarchies)
        assert calls["plans"] == 1

    def test_engine_counts_batched_requests(self, config):
        configs = [
            config.with_caches(l1={"size_bytes": size})
            for size in (8 * 1024, 16 * 1024, 32 * 1024)
        ]
        plan = SimPlan(
            SimRequest(workload="intsort", mode="none", scale="tiny", config=cfg)
            for cfg in configs
        )
        engine = SimEngine(runner=SerialRunner())
        batch = engine.run(plan)
        assert batch.stats.batched == len(configs)
        assert "vector-batched" in batch.stats.summary()
        for request, cfg in zip(plan, configs):
            direct = simulate(
                registry.build("intsort", scale="tiny", seed=42), request.prefetch_mode, cfg
            )
            assert batch[request].as_dict() == direct.as_dict()

    def test_engine_batched_is_zero_under_interpreter(self, config, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "interp")
        plan = SimPlan(
            SimRequest(
                workload="intsort",
                mode="none",
                scale="tiny",
                config=config.with_caches(l1={"size_bytes": size}),
            )
            for size in (8 * 1024, 16 * 1024)
        )
        batch = SimEngine(runner=SerialRunner()).run(plan)
        assert batch.stats.batched == 0
        assert len(batch) == 2
