"""Integration tests: full simulations of tiny workloads under every mode."""

import json
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.errors import WorkloadError
from repro.sim import PrefetchMode, mode_available, run_comparison, simulate
from repro.sim.modes import FIGURE7_MODES
from repro.sim.results import geometric_mean
from repro.sim.sweeps import ppu_count_frequency_sweep, ppu_frequency_sweep
from repro.workloads import registry

GOLDEN_PATH = Path(__file__).resolve().parent / "data" / "golden_stats.json"


@pytest.fixture(scope="module")
def config():
    return SystemConfig.scaled()


class TestSimulateBasics:
    def test_baseline_result_structure(self, tiny_workloads, config):
        workload = tiny_workloads.get("intsort")
        result = simulate(workload, PrefetchMode.NONE, config)
        assert result.cycles > 0
        assert result.instructions > 0
        assert 0 <= result.l1_read_hit_rate <= 1
        assert result.prefetcher is None
        assert result.mode == "none"
        assert result.as_dict()["workload"] == "intsort"

    def test_manual_mode_attaches_engine(self, tiny_workloads, config):
        workload = tiny_workloads.get("intsort")
        result = simulate(workload, PrefetchMode.MANUAL, config)
        assert result.prefetcher is not None
        assert result.prefetcher["prefetches_issued"] > 0

    def test_unavailable_mode_raises(self, tiny_workloads, config):
        workload = tiny_workloads.get("pagerank")
        assert not mode_available(workload, PrefetchMode.SOFTWARE)
        with pytest.raises(WorkloadError):
            simulate(workload, PrefetchMode.SOFTWARE, config)

    def test_deterministic_across_repeats(self, tiny_workloads, config):
        workload = tiny_workloads.get("randacc")
        first = simulate(workload, PrefetchMode.MANUAL, config)
        second = simulate(workload, PrefetchMode.MANUAL, config)
        assert first.cycles == second.cycles
        assert first.dram_accesses == second.dram_accesses

    def test_speedup_and_traffic_helpers(self, tiny_workloads, config):
        workload = tiny_workloads.get("conjgrad")
        baseline = simulate(workload, PrefetchMode.NONE, config)
        manual = simulate(workload, PrefetchMode.MANUAL, config)
        assert manual.speedup_over(baseline) == pytest.approx(baseline.cycles / manual.cycles)
        assert manual.extra_memory_accesses(baseline) > -0.5


class TestBehaviouralShape:
    """The qualitative results the paper's evaluation establishes."""

    @pytest.mark.parametrize("name", ["intsort", "randacc", "conjgrad", "hj2", "hj8"])
    def test_manual_prefetching_speeds_up_irregular_workloads(self, tiny_workloads, config, name):
        workload = tiny_workloads.get(name)
        baseline = simulate(workload, PrefetchMode.NONE, config)
        manual = simulate(workload, PrefetchMode.MANUAL, config)
        assert manual.cycles < baseline.cycles
        assert manual.l1_read_hit_rate > baseline.l1_read_hit_rate

    def test_ghb_regular_gains_nothing(self, tiny_workloads, config):
        workload = tiny_workloads.get("randacc")
        baseline = simulate(workload, PrefetchMode.NONE, config)
        ghb = simulate(workload, PrefetchMode.GHB_REGULAR, config)
        assert ghb.speedup_over(baseline) == pytest.approx(1.0, abs=0.15)

    def test_manual_beats_stride_on_pointer_chasing(self, tiny_workloads, config):
        workload = tiny_workloads.get("hj8")
        baseline = simulate(workload, PrefetchMode.NONE, config)
        stride = simulate(workload, PrefetchMode.STRIDE, config)
        manual = simulate(workload, PrefetchMode.MANUAL, config)
        assert manual.speedup_over(baseline) > stride.speedup_over(baseline)

    def test_blocking_removes_benefit_for_chained_patterns(self, tiny_workloads, config):
        workload = tiny_workloads.get("hj8")
        manual = simulate(workload, PrefetchMode.MANUAL, config)
        blocked = simulate(workload, PrefetchMode.MANUAL_BLOCKED, config)
        assert blocked.cycles > manual.cycles

    def test_prefetching_adds_little_memory_traffic(self, tiny_workloads, config):
        workload = tiny_workloads.get("intsort")
        baseline = simulate(workload, PrefetchMode.NONE, config)
        manual = simulate(workload, PrefetchMode.MANUAL, config)
        assert manual.extra_memory_accesses(baseline) < 0.25

    def test_software_prefetch_increases_instruction_count(self, tiny_workloads, config):
        workload = tiny_workloads.get("intsort")
        baseline = simulate(workload, PrefetchMode.NONE, config)
        software = simulate(workload, PrefetchMode.SOFTWARE, config)
        assert software.instructions > baseline.instructions

    def test_activity_concentrated_on_low_id_ppus(self, tiny_workloads, config):
        workload = tiny_workloads.get("conjgrad")
        manual = simulate(workload, PrefetchMode.MANUAL, config)
        factors = manual.activity_factors
        assert len(factors) == config.prefetcher.num_ppus
        assert factors[0] >= factors[-1]


@pytest.fixture(scope="module")
def golden_stats():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestGoldenStats:
    """Bit-identical equivalence against the pinned pre-refactor fingerprints.

    The golden file (regenerated only via ``tools/update_golden_stats.py``)
    records the full ``SimulationResult`` — cycles, every core and hierarchy
    counter, and the prefetcher engine statistics — for every registered
    workload under every available mode at tiny scale.  Any hot-path
    optimisation must reproduce these numbers *exactly*; a mismatch means
    the timing model changed, not just its speed.
    """

    def test_golden_file_covers_every_registered_workload(self, golden_stats):
        covered = {key.split("/", 1)[0] for key in golden_stats}
        assert covered == set(registry.names())

    @pytest.mark.parametrize("name", registry.names())
    def test_bit_identical_results_for_every_available_mode(
        self, name, tiny_workloads, config, golden_stats
    ):
        workload = tiny_workloads.get(name)
        checked = 0
        for mode in PrefetchMode:
            if not mode_available(workload, mode):
                assert f"{name}/{mode.value}" not in golden_stats
                continue
            expected = golden_stats[f"{name}/{mode.value}"]
            result = simulate(workload, mode, config)
            measured = json.loads(json.dumps(result.as_dict()))
            assert measured == expected, (
                f"{name}/{mode.value}: simulation diverged from the golden "
                f"fingerprint — the timing model changed"
            )
            checked += 1
        assert checked > 0


class TestComparisonDriver:
    def test_run_comparison_subset(self, config):
        comparison = run_comparison(
            ["intsort"], [PrefetchMode.STRIDE, PrefetchMode.MANUAL], config=config, scale="tiny"
        )
        assert "intsort" in comparison.workloads
        assert comparison.speedup("intsort", PrefetchMode.MANUAL) is not None
        assert comparison.speedup("intsort", PrefetchMode.CONVERTED) is None
        assert comparison.geomean_speedup(PrefetchMode.MANUAL) > 0

    def test_unavailable_modes_skipped_silently(self, config):
        comparison = run_comparison(
            ["pagerank"], [PrefetchMode.SOFTWARE, PrefetchMode.MANUAL], config=config, scale="tiny"
        )
        assert comparison.speedup("pagerank", PrefetchMode.SOFTWARE) is None
        assert comparison.speedup("pagerank", PrefetchMode.MANUAL) is not None

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestSweeps:
    def test_frequency_sweep_returns_all_points(self, tiny_workloads, config):
        workload = tiny_workloads.get("randacc")
        sweep = ppu_frequency_sweep(workload, frequencies=[0.5, 2.0], config=config)
        assert set(sweep) == {0.5, 2.0}
        assert all(value > 0 for value in sweep.values())

    def test_count_frequency_sweep_shape(self, tiny_workloads, config):
        workload = tiny_workloads.get("intsort")
        sweep = ppu_count_frequency_sweep(
            workload, counts=[3, 12], frequencies=[1.0], config=config
        )
        assert set(sweep) == {(3, 1.0), (12, 1.0)}
        assert sweep[(12, 1.0)] >= 0.8 * sweep[(3, 1.0)]
