"""Repository-level pytest configuration.

Makes the ``repro`` package importable directly from the source tree so that
``pytest tests/`` and ``pytest benchmarks/`` work even when an editable
install is not possible (e.g. fully offline environments where pip cannot
build PEP 660 editable wheels).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
