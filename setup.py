"""Setuptools entry point.

The project is fully described by ``pyproject.toml``; this shim exists so that
``pip install -e .`` also works on environments whose pip/setuptools cannot
perform PEP 660 editable installs (e.g. offline machines without the ``wheel``
package, where pip falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
