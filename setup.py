"""Setuptools entry point.

Kept as an explicit ``setup()`` call so that ``pip install -e .`` works even
on environments whose pip/setuptools cannot perform PEP 660 editable installs
(e.g. offline machines without the ``wheel`` package, where pip falls back to
the legacy ``setup.py develop`` path).

The simulator itself is dependency-free pure Python.  The ``vector`` extra
pulls in numpy for the vectorized replay backend (see
``docs/performance.md``); without it every simulation transparently runs on
the interpreter backend with identical results.
"""

from setuptools import find_packages, setup

setup(
    name="repro-programmable-prefetcher",
    version="0.7.0",
    description=(
        "Software reproduction of an event-triggered programmable prefetcher "
        "with a cycle-approximate cache and out-of-order core model"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[],
    entry_points={
        "console_scripts": [
            # `repro serve` runs the simulation service daemon.
            "repro=repro.cli:main",
        ],
    },
    extras_require={
        # Optional acceleration tier; results are bit-identical without it.
        "vector": ["numpy>=1.22"],
        "test": ["pytest", "hypothesis", "numpy>=1.22"],
    },
)
